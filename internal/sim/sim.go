package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/iolog"
	"repro/internal/joblog"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/raslog"
	"repro/internal/sched"
	"repro/internal/tasklog"
)

// Corpus is a complete synthetic observation window: the four logs plus the
// generator's ground truth for validation.
type Corpus struct {
	Config Config
	Jobs   []joblog.Job
	Tasks  []tasklog.Task
	Events []raslog.Event
	IO     []iolog.Record
	Truth  GroundTruth
}

// GroundTruth records what the generator actually injected, so tests and
// EXPERIMENTS.md can compare analysis output against reality.
type GroundTruth struct {
	Incidents        int // fatal incidents injected
	KillingIncidents int // incidents that interrupted ≥1 job
	SystemKilledJobs int // jobs ended by an incident
	UserFailedJobs   int // jobs ended by a user-caused failure
	SucceededJobs    int // jobs that completed cleanly
	DroppedArrivals  int // submissions never started inside the window
	Throttled        int // arrivals suppressed by queue-depth back-pressure
	Resubmissions    int // jobs created by resubmitting a failed job
	Repairs          int // service actions performed after incidents
	// RepairMidplaneHours is the total out-of-service time summed over
	// midplanes.
	RepairMidplaneHours float64
}

// jobPlan is a job's pre-drawn fate: size, walltime, natural duration and
// natural exit status. The incident timeline may override the ending.
type jobPlan struct {
	id       int64
	u        *user
	submit   time.Time
	nodes    int
	ranks    int
	walltime time.Duration
	duration time.Duration
	exit     int
	tasks    int
	chain    int   // resubmission depth (0 = fresh submission)
	resubOf  int64 // id of the failed job this resubmits (0 = none)
}

// runState tracks a started job.
type runState struct {
	plan  *jobPlan
	block machine.Block
	start time.Time
}

// Event kinds for the simulation heap.
const (
	evArrival = iota + 1
	evCompletion
	evIncident
	evRepairEnd
)

type simEvent struct {
	at   time.Time
	kind int
	seq  int64 // deterministic tiebreak
	idx  int   // arrival/incident index
	job  int64 // completion job id
}

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// shardDays is the fixed granularity at which the observation window is
// split for parallel generation. It is a property of the corpus definition,
// NOT of the machine: shard boundaries and the per-shard RNG seeds depend
// only on (Config, Seed), so the corpus is bit-identical for any worker
// count. The phases generated per shard (arrivals, incidents, noise) are
// Poisson processes, which are memoryless — restarting the inter-arrival
// draw at a shard boundary leaves the process law unchanged.
const shardDays = 25

// dayShard is one [Lo, Hi) day range of the observation window.
type dayShard struct{ Lo, Hi int }

// dayShards splits the observation span into fixed-size day ranges.
func dayShards(days int) []dayShard {
	shards := make([]dayShard, 0, (days+shardDays-1)/shardDays)
	for lo := 0; lo < days; lo += shardDays {
		hi := lo + shardDays
		if hi > days {
			hi = days
		}
		shards = append(shards, dayShard{Lo: lo, Hi: hi})
	}
	return shards
}

// Phase salts for the generator's independent RNG sub-streams.
const (
	saltPopulation = 1
	saltArrival    = 2
	saltIncident   = 3
	saltLoop       = 4
	saltNoise      = 5
	saltCascade    = 6
)

// shardSeed derives the seed of one shard (or one incident) of a phase from
// the config seed. splitmix64-style mixing keeps the per-shard streams
// statistically independent even though the inputs differ in few bits.
func shardSeed(seed, salt int64, idx int) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(salt)<<40 + uint64(idx+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// shardRNG returns the deterministic RNG of one shard of a phase.
func shardRNG(seed, salt int64, idx int) *rand.Rand {
	return rand.New(rand.NewSource(shardSeed(seed, salt, idx)))
}

// Generate produces a corpus from the configuration. The same (Config,
// Seed) always yields the identical corpus. Generation uses all cores; use
// GenerateParallel to bound the worker count — the corpus is identical
// either way.
func Generate(cfg Config) (*Corpus, error) {
	return GenerateParallel(cfg, 0)
}

// GenerateParallel generates the corpus with at most workers goroutines
// (≤ 0 means GOMAXPROCS). The day range is sharded at a fixed granularity
// with a deterministic per-shard RNG for each generation phase, and shard
// outputs are concatenated in day order, so the corpus for a given (Config,
// Seed) is bit-identical regardless of the worker count or GOMAXPROCS. Only
// the event-driven scheduler replay is serial — it is a global stateful
// simulation; the random-drawing phases around it (arrivals, incident
// timeline, cascade expansion, background noise) all fan out.
func GenerateParallel(cfg Config, workers int) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctx := context.Background()
	// Independent sub-streams per generation phase keep the phases
	// decoupled: tuning the workload does not perturb the fault timeline
	// and vice versa.
	subRNG := func(salt int64) *rand.Rand {
		return rand.New(rand.NewSource(cfg.Seed<<20 ^ salt))
	}
	pop := buildPopulation(&cfg, subRNG(saltPopulation))
	laws := DurationLaws()
	shards := dayShards(cfg.Days)

	// Arrivals: one nonhomogeneous Poisson stream per day shard, each from
	// its own seed, concatenated in day order with ids assigned afterwards
	// (shards are disjoint in time, so the concatenation is time-ordered).
	planShards, err := par.Map(ctx, shards, workers, func(s int, sh dayShard) ([]jobPlan, error) {
		return buildArrivalsShard(&cfg, pop, laws, sh, shardRNG(cfg.Seed, saltArrival, s)), nil
	})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	var plans []jobPlan
	for _, ps := range planShards {
		plans = append(plans, ps...)
	}
	for i := range plans {
		plans[i].id = int64(i + 1)
	}

	// Incidents: the hot-midplane set is global (drawn once), the bathtub
	// Poisson timeline is sharded like the arrivals. Per-shard neighbor
	// propagation can spill past a shard's end, so the concatenation gets a
	// final stable time sort.
	hot, cold := hotColdMidplanes(&cfg, subRNG(saltIncident))
	incidentShards, err := par.Map(ctx, shards, workers, func(s int, sh dayShard) ([]incident, error) {
		return buildIncidentsShard(&cfg, hot, cold, sh, shardRNG(cfg.Seed, saltIncident, s)), nil
	})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	var incidents []incident
	for _, is := range incidentShards {
		incidents = append(incidents, is...)
	}
	sort.SliceStable(incidents, func(i, j int) bool { return incidents[i].at.Before(incidents[j].at) })

	rng := subRNG(saltLoop) // tasks + I/O records during the loop

	c := &Corpus{Config: cfg}
	c.Truth.Incidents = len(incidents)

	end := cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	s := sched.New(cfg.Policy)

	var h eventHeap
	var seq int64
	push := func(at time.Time, kind, idx int, job int64) {
		seq++
		heap.Push(&h, simEvent{at: at, kind: kind, seq: seq, idx: idx, job: job})
	}
	for i := range plans {
		push(plans[i].submit, evArrival, 0, plans[i].id)
	}
	for i := range incidents {
		push(incidents[i].at, evIncident, i, 0)
	}

	planByID := make(map[int64]*jobPlan, len(plans))
	nextID := int64(0)
	for i := range plans {
		planByID[plans[i].id] = &plans[i]
		if plans[i].id > nextID {
			nextID = plans[i].id
		}
	}
	running := make(map[int64]*runState)
	var taskID int64

	// Service actions: each incident takes its midplanes out of service for
	// a lognormal repair window, bracketed by begin/end RAS records so the
	// availability analysis can recover downtime from the log alone.
	type repair struct {
		marked []int
		end    time.Time
	}
	var repairs []repair
	var serviceEvents []raslog.Event

	finalize := func(r *runState, endAt time.Time, exit int, now time.Time) error {
		p := r.plan
		job := joblog.Job{
			ID: p.id, User: p.u.name, Project: p.u.project, Queue: queueFor(p.nodes),
			Submit: p.submit, Start: r.start, End: endAt,
			WalltimeReq: p.walltime, Nodes: p.nodes, RanksPerNode: p.ranks,
			NumTasks: p.tasks, ExitStatus: exit,
		}
		c.Jobs = append(c.Jobs, job)
		c.Tasks = append(c.Tasks, makeTasks(rng, &taskID, &job, r.block)...)
		if rng.Float64() < cfg.IOSampling {
			c.IO = append(c.IO, makeIO(rng, &job, p.u))
		}
		if err := s.Complete(p.id); err != nil {
			return err
		}
		delete(running, p.id)
		// Failed work comes back: users resubmit user-failed jobs after a
		// short think time, up to a bounded chain — the resubmission
		// behaviour the E20 analysis measures.
		if exit != joblog.ExitSuccess && exit != joblog.ExitSystemReserved &&
			p.chain < maxResubChain && rng.Float64() < cfg.ResubmitProb {
			delay := time.Duration(math.Exp(math.Log(480)+0.9*rng.NormFloat64())) * time.Second
			if at := endAt.Add(delay); at.Before(end) {
				nextID++
				resub := *p
				resub.id = nextID
				resub.chain = p.chain + 1
				resub.resubOf = p.id
				resub.submit = at
				drawFate(&cfg, p.u, laws, rng, &resub)
				planByID[resub.id] = &resub
				c.Truth.Resubmissions++
				push(at, evArrival, 0, resub.id)
			}
		}
		return nil
	}

	trySchedule := func(now time.Time) {
		if now.After(end) {
			return
		}
		for _, d := range s.Schedule(now) {
			p := planByID[d.JobID]
			r := &runState{plan: p, block: d.Block, start: now}
			running[p.id] = r
			push(now.Add(p.duration), evCompletion, 0, p.id)
		}
	}

	for h.Len() > 0 {
		e := heap.Pop(&h).(simEvent)
		now := e.at
		switch e.kind {
		case evArrival:
			p := planByID[e.job]
			if now.After(end) {
				c.Truth.DroppedArrivals++
				continue
			}
			// Closed-loop elasticity: users seeing a deep backlog hold
			// their submissions, so the queue (and with it the waiting
			// time) stays bounded even at saturation.
			if cfg.MaxQueue > 0 && s.QueueLen() >= cfg.MaxQueue {
				c.Truth.Throttled++
				continue
			}
			if err := s.Submit(p.id, p.nodes, p.walltime, now); err != nil {
				return nil, fmt.Errorf("sim: %w", err)
			}
			trySchedule(now)
		case evIncident:
			inc := &incidents[e.idx]
			killed := 0
			// Deterministic victim order: ascending job id.
			ids := make([]int64, 0, 4)
			for id, r := range running {
				if r.block.ContainsLocation(inc.loc) {
					ids = append(ids, id)
				}
			}
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			for _, id := range ids {
				r := running[id]
				if inc.killedJob == 0 {
					inc.killedJob = id
				}
				if err := finalize(r, now, joblog.ExitSystemReserved, now); err != nil {
					return nil, fmt.Errorf("sim: %w", err)
				}
				killed++
			}
			if killed > 0 {
				c.Truth.KillingIncidents++
				c.Truth.SystemKilledJobs += killed
			}
			// Begin the service action: the incident's midplanes leave
			// service until the repair completes.
			if mids := incidentMidplanes(inc.loc); len(mids) > 0 {
				dur := time.Duration(math.Exp(math.Log(cfg.RepairMedian.Hours())+0.8*rng.NormFloat64())*3600) * time.Second
				if dur < 10*time.Minute {
					dur = 10 * time.Minute
				}
				marked := s.MarkDown(mids)
				if len(marked) > 0 {
					r := repair{marked: marked, end: now.Add(dur)}
					repairs = append(repairs, r)
					c.Truth.Repairs++
					c.Truth.RepairMidplaneHours += dur.Hours() * float64(len(marked))
					for _, id := range marked {
						loc, err := machine.MidplaneByID(id)
						if err != nil {
							continue
						}
						serviceEvents = append(serviceEvents,
							serviceEvent(raslog.MsgServiceBegin, now.Add(30*time.Second), loc),
							serviceEvent(raslog.MsgServiceEnd, r.end, loc))
					}
					push(r.end, evRepairEnd, len(repairs)-1, 0)
				}
			}
			trySchedule(now)
		case evRepairEnd:
			if err := s.MarkUp(repairs[e.idx].marked); err != nil {
				return nil, fmt.Errorf("sim: %w", err)
			}
			trySchedule(now)
		case evCompletion:
			r, ok := running[e.job]
			if !ok {
				continue // job was killed by an incident; stale event
			}
			if err := finalize(r, now, r.plan.exit, now); err != nil {
				return nil, fmt.Errorf("sim: %w", err)
			}
			trySchedule(now)
		}
	}

	for _, j := range c.Jobs {
		switch {
		case j.ExitStatus == joblog.ExitSuccess:
			c.Truth.SucceededJobs++
		case j.ExitStatus == joblog.ExitSystemReserved:
			// counted during the loop
		default:
			c.Truth.UserFailedJobs++
		}
	}

	// Render the RAS stream: background noise (sharded by day range) plus
	// incident cascades (one RNG per incident, with job attribution fixed
	// during the loop), concatenated in a fixed order, then sorted by time.
	noiseShards, err := par.Map(ctx, shards, workers, func(s int, sh dayShard) ([]raslog.Event, error) {
		return buildNoiseShard(&cfg, sh, shardRNG(cfg.Seed, saltNoise, s)), nil
	})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	bursts, err := par.Map(ctx, incidents, workers, func(i int, _ incident) ([]raslog.Event, error) {
		return expandIncident(&cfg, shardRNG(cfg.Seed, saltCascade, i), &incidents[i]), nil
	})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	var events []raslog.Event
	for _, ns := range noiseShards {
		events = append(events, ns...)
	}
	for _, b := range bursts {
		events = append(events, b...)
	}
	events = append(events, serviceEvents...)
	// Pre-sort record ids make the equal-time tiebreak total, so the final
	// order is fully determined by the (deterministic) concatenation order.
	for i := range events {
		events[i].RecID = int64(i + 1)
	}
	sort.Slice(events, func(i, j int) bool {
		if !events[i].Time.Equal(events[j].Time) {
			return events[i].Time.Before(events[j].Time)
		}
		return events[i].RecID < events[j].RecID
	})
	for i := range events {
		events[i].RecID = int64(i + 1)
	}
	c.Events = events

	sort.Slice(c.Jobs, func(i, j int) bool { return c.Jobs[i].ID < c.Jobs[j].ID })
	sort.Slice(c.Tasks, func(i, j int) bool { return c.Tasks[i].ID < c.Tasks[j].ID })
	sort.Slice(c.IO, func(i, j int) bool { return c.IO[i].JobID < c.IO[j].JobID })
	return c, nil
}

// buildArrivalsShard draws the submission stream of one day shard: a
// nonhomogeneous Poisson process (diurnal + weekly modulation) with
// per-user job fates. Poisson inter-arrival draws are memoryless, so
// restarting the stream at the shard boundary preserves the process law.
// Job ids are assigned after the shards are concatenated.
func buildArrivalsShard(cfg *Config, pop *population, laws map[joblog.ExitFamily]dist.Distribution, sh dayShard, rng *rand.Rand) []jobPlan {
	baseRate := cfg.JobsPerDay / (24 * 3600) // per second at factor 1
	maxFactor := 1.0
	start := cfg.Start.Add(time.Duration(sh.Lo) * 24 * time.Hour)
	end := cfg.Start.Add(time.Duration(sh.Hi) * 24 * time.Hour)
	var plans []jobPlan
	t := start
	for {
		// Thinning with the max-rate envelope.
		gap := rng.ExpFloat64() / (baseRate * maxFactor)
		t = t.Add(time.Duration(gap * float64(time.Second)))
		if !t.Before(end) {
			break
		}
		if rng.Float64() > arrivalFactor(cfg, t)/maxFactor {
			continue
		}
		plans = append(plans, drawJob(cfg, pop, laws, rng, 0, t))
	}
	return plans
}

// arrivalFactor modulates the arrival rate by hour of day and weekday.
func arrivalFactor(cfg *Config, t time.Time) float64 {
	f := 1.0
	if h := t.Hour(); h < 8 {
		f *= cfg.NightFactor
	}
	if wd := t.Weekday(); wd == time.Saturday || wd == time.Sunday {
		f *= cfg.WeekendFactor
	}
	return f
}

// drawJob draws one job's user, size, walltime, natural duration and exit.
func drawJob(cfg *Config, pop *population, laws map[joblog.ExitFamily]dist.Distribution, rng *rand.Rand, id int64, submit time.Time) jobPlan {
	u := pop.pickUser(rng)
	p := jobPlan{id: id, u: u, submit: submit, nodes: u.pickSize(rng), ranks: pickRanks(rng)}
	p.tasks = 1
	for rng.Float64() < 0.35 && p.tasks < 12 {
		p.tasks++
	}
	drawFate(cfg, u, laws, rng, &p)
	return p
}

// drawFate draws (or redraws, for a resubmission) a job's walltime,
// natural duration and exit status given its structure. Failure
// probability grows with execution structure, as the paper observes:
// larger allocations expose scale bugs, and multi-task scripts multiply
// the chances that one run trips.
func drawFate(cfg *Config, u *user, laws map[joblog.ExitFamily]dist.Distribution, rng *rand.Rand, p *jobPlan) {
	walltime := math.Exp(u.walltimeMu + 0.6*rng.NormFloat64())
	walltime = clamp(walltime, 600, 86400)
	scaleBoost := 1 + 0.40*math.Log2(float64(p.nodes)/512)/6.5
	taskBoost := 1 + 0.06*float64(p.tasks-1)
	failProb := clamp(u.failProb*scaleBoost*taskBoost, 0.01, 0.95)
	if rng.Float64() < failProb {
		family, exit := u.pickFailure(rng)
		d := laws[family].Rand(rng)
		d = clamp(d, 1, 86400)
		p.duration = time.Duration(math.Round(d)) * time.Second
		p.exit = exit
		if need := 1.1 * d; walltime < need {
			walltime = need
		}
	} else {
		frac := 0.35 + 0.6*math.Pow(rng.Float64(), 0.8)
		p.duration = time.Duration(math.Round(walltime*frac)) * time.Second
		p.exit = joblog.ExitSuccess
	}
	if p.duration < time.Second {
		p.duration = time.Second
	}
	p.walltime = time.Duration(math.Round(walltime)) * time.Second
}

// pickRanks draws the BG/Q execution mode (ranks per node).
func pickRanks(rng *rand.Rand) int {
	switch r := rng.Float64(); {
	case r < 0.70:
		return 16
	case r < 0.85:
		return 32
	case r < 0.93:
		return 8
	case r < 0.98:
		return 64
	default:
		return 4
	}
}

// queueFor names the submission queue by job size, Mira-style.
func queueFor(nodes int) string {
	switch {
	case nodes >= 8192:
		return "prod-capability"
	case nodes >= 4096:
		return "prod-long"
	default:
		return "prod-short"
	}
}

// makeTasks splits a job's execution into its physical runs: contiguous
// segments on the job's block; the final run carries the job's exit status.
func makeTasks(rng *rand.Rand, taskID *int64, j *joblog.Job, block machine.Block) []tasklog.Task {
	n := j.NumTasks
	total := j.End.Sub(j.Start)
	if total <= 0 {
		n = 1
	}
	// Random cut points produce uneven task lengths, like real run scripts.
	cuts := make([]float64, 0, n+1)
	cuts = append(cuts, 0)
	for i := 0; i < n-1; i++ {
		cuts = append(cuts, rng.Float64())
	}
	cuts = append(cuts, 1)
	sort.Float64s(cuts)
	tasks := make([]tasklog.Task, 0, n)
	for i := 0; i < n; i++ {
		*taskID++
		start := j.Start.Add(time.Duration(cuts[i] * float64(total)))
		end := j.Start.Add(time.Duration(cuts[i+1] * float64(total)))
		exit := 0
		if i == n-1 {
			exit = j.ExitStatus
		}
		tasks = append(tasks, tasklog.Task{
			ID: *taskID, JobID: j.ID, Block: block,
			Start: start, End: end, Nodes: j.Nodes, ExitStatus: exit,
		})
	}
	return tasks
}

// makeIO draws a Darshan-style record for the job. Volume scales sublinearly
// with core-hours and is cut by early termination, so failed jobs move less
// data — the correlation experiment E13 measures exactly this.
func makeIO(rng *rand.Rand, j *joblog.Job, u *user) iolog.Record {
	ch := j.CoreHours()
	if ch < 1 {
		ch = 1
	}
	scale := math.Pow(ch/1e4, 0.6) * u.ioScale
	total := math.Exp(math.Log(2e9)+1.3*rng.NormFloat64()) * scale
	if j.ExitStatus != joblog.ExitSuccess {
		// Interrupted work: proportional to the fraction of walltime used.
		frac := float64(j.Runtime()) / float64(j.WalltimeReq)
		total *= clamp(frac, 0.02, 1)
	}
	readFrac := clamp(0.15+0.5*rng.Float64(), 0, 1)
	read := total * readFrac
	written := total - read
	bw := 0.5e9 + 4.5e9*rng.Float64() // aggregate file-system bandwidth
	ioTime := time.Duration(total / bw * float64(time.Second))
	return iolog.Record{
		JobID:        j.ID,
		BytesRead:    int64(read),
		BytesWritten: int64(written),
		FilesRead:    1 + rng.Intn(64),
		FilesWritten: 1 + rng.Intn(512),
		MetaOps:      int64(1000 + rng.Intn(500000)),
		IOTime:       ioTime,
	}
}

// maxResubChain bounds how many times one failing job is resubmitted.
const maxResubChain = 3

// incidentMidplanes returns the linear midplane IDs an incident's root
// location covers (1 for midplane-level, 2 for rack-level, none for
// system-level).
func incidentMidplanes(loc machine.Location) []int {
	switch loc.Level() {
	case machine.LevelRack:
		base := loc.RackIndex() * machine.MidplanesPerRack
		return []int{base, base + 1}
	case machine.LevelSystem:
		return nil
	default:
		id, err := loc.MidplaneID()
		if err != nil {
			return nil
		}
		return []int{id}
	}
}

// serviceEvent builds a service-action RAS record; record IDs are assigned
// when the full stream is sorted.
func serviceEvent(msgID string, at time.Time, loc machine.Location) raslog.Event {
	entry, ok := raslog.CatalogByID()[msgID]
	if !ok {
		entry = raslog.CatalogEntry{Comp: raslog.CompMMCS, Cat: raslog.CatInfra, Sev: raslog.Info, Message: "service action"}
	}
	return raslog.Event{
		MsgID:   msgID,
		Comp:    entry.Comp,
		Cat:     entry.Cat,
		Sev:     raslog.Info,
		Time:    at,
		Loc:     loc,
		Message: entry.Message,
		Count:   1,
	}
}
