package sim

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/machine"
	"repro/internal/raslog"
)

// incident is one fatal hardware/system event that can interrupt the job
// running on the affected hardware. Each incident later expands into a
// burst ("cascade") of near-duplicate FATAL RAS records — the redundancy the
// paper's similarity-based filtering removes.
type incident struct {
	at        time.Time
	loc       machine.Location // root location (midplane granularity or coarser)
	entry     raslog.CatalogEntry
	events    int   // cascade size (≥ 1)
	killedJob int64 // job interrupted by this incident (0 if hardware was idle)
}

// fatalCatalog returns the FATAL catalog entries that model job-killing
// hardware incidents, excluding system-level infra messages that do not map
// to a block.
func fatalCatalog() []raslog.CatalogEntry {
	var out []raslog.CatalogEntry
	for _, e := range raslog.Catalog() {
		if e.Sev == raslog.Fatal && e.LocLevel >= machine.LevelRack {
			out = append(out, e)
		}
	}
	return out
}

// hazardFactor shapes the incident rate over the system's life as a
// bathtub curve: elevated during early-life burn-in, flat mid-life, and
// slowly rising again toward end of life (wear-out). The factors average
// ≈1 over a 2001-day span so the configured IncidentsPerYear stays the
// corpus mean.
func hazardFactor(cfg *Config, t time.Time) float64 {
	days := t.Sub(cfg.Start).Hours() / 24
	span := float64(cfg.Days)
	// Burn-in: ×1.9 at day 0 decaying to baseline over ~180 days.
	burnIn := 1 + 0.9*math.Exp(-days/90)
	// Wear-out: up to +25% in the final quarter of a long deployment.
	wearOut := 1.0
	if span > 365 {
		wearOut = 1 + 0.25*math.Max(0, (days-0.75*span)/(0.25*span))
	}
	// Normalization constant ≈ mean of burnIn over the span.
	norm := 1 + 0.9*90/span*(1-math.Exp(-span/90)) + 0.25/8
	return burnIn * wearOut / norm
}

// hotColdMidplanes draws the global spatial skew of the fault model: the
// first HotMidplanes of a random permutation are "hot" (they absorb
// HotHazardShare of incidents, giving the strong locality the paper
// reports). The partition is shared by every day shard, so it is drawn once
// from its own serial stream.
func hotColdMidplanes(cfg *Config, rng *rand.Rand) (hot, cold []int) {
	perm := rng.Perm(machine.TotalMidplanes)
	return perm[:cfg.HotMidplanes], perm[cfg.HotMidplanes:]
}

// buildIncidentsShard draws the fatal-incident timeline of one day shard: a
// nonhomogeneous Poisson process in time (bathtub hazard, see hazardFactor)
// with the shared hot/cold location law. The Poisson thinning restarts at
// the shard boundary, which is exact by memorylessness; neighbor
// propagation may spill past the shard's end, so the caller re-sorts the
// concatenated timeline.
func buildIncidentsShard(cfg *Config, hot, cold []int, sh dayShard, rng *rand.Rand) []incident {
	rate := cfg.IncidentsPerYear / (365 * 24 * float64(time.Hour/time.Second)) // per second
	catalog := fatalCatalog()
	if len(catalog) == 0 || rate <= 0 {
		return nil
	}
	start := cfg.Start.Add(time.Duration(sh.Lo) * 24 * time.Hour)
	end := cfg.Start.Add(time.Duration(sh.Hi) * 24 * time.Hour)

	// Thinning envelope: hazardFactor is bounded by 2.2/norm ≤ 2.2.
	const maxFactor = 2.2
	var incidents []incident
	t := start
	for {
		// Exponential inter-arrival at the envelope rate, thinned to the
		// bathtub intensity.
		gap := time.Duration(rng.ExpFloat64() / (rate * maxFactor) * float64(time.Second))
		t = t.Add(gap)
		if t.After(end) {
			break
		}
		if rng.Float64() > hazardFactor(cfg, t)/maxFactor {
			continue
		}
		entry := catalog[rng.Intn(len(catalog))]
		var midID int
		if len(hot) > 0 && rng.Float64() < cfg.HotHazardShare {
			midID = hot[rng.Intn(len(hot))]
		} else {
			midID = cold[rng.Intn(len(cold))]
		}
		loc, err := machine.MidplaneByID(midID)
		if err != nil {
			continue
		}
		// Rack-level messages (power, cooling, I/O path) report at the rack.
		if entry.LocLevel == machine.LevelRack {
			loc, _ = loc.Ancestor(machine.LevelRack)
		}
		// Cascade size: geometric-ish heavy tail with the configured mean.
		n := 1 + int(rng.ExpFloat64()*(cfg.CascadeMeanEvents-1))
		if n > 400 {
			n = 400
		}
		incidents = append(incidents, incident{at: t, loc: loc, entry: entry, events: n})
	}
	// Propagation: some incidents spread along torus cables to a neighbor
	// midplane shortly afterwards (link-chip and cable failures touch both
	// endpoints). This is the signal the spatial-correlation analysis E21
	// detects as "close in time ⇒ close on the torus".
	base := len(incidents)
	for i := 0; i < base; i++ {
		inc := &incidents[i]
		if rng.Float64() >= cfg.NeighborSpread {
			continue
		}
		midID, ok := machine.TorusMidplaneID(inc.loc)
		if !ok {
			continue
		}
		neighbors, err := machine.TorusNeighbors(midID)
		if err != nil || len(neighbors) == 0 {
			continue
		}
		nloc, err := machine.MidplaneByID(neighbors[rng.Intn(len(neighbors))])
		if err != nil {
			continue
		}
		entry := inc.entry
		if entry.LocLevel == machine.LevelRack {
			nloc, _ = nloc.Ancestor(machine.LevelRack)
		}
		delay := time.Duration(1+rng.Intn(29)) * time.Minute
		n := 1 + inc.events/2
		incidents = append(incidents, incident{at: inc.at.Add(delay), loc: nloc, entry: entry, events: n})
	}
	// No sort here: base incidents are time-ordered but propagated ones are
	// appended out of order (and may land past the shard end); the caller
	// stable-sorts the concatenated timeline once.
	return incidents
}

// warnPrecursorFor returns the WARN catalog entry of the incident's
// category, if one exists — degrading hardware usually warns before it
// dies (correctable-error thresholds, CRC rates, temperatures).
func warnPrecursorFor(cat raslog.Category) (raslog.CatalogEntry, bool) {
	for _, e := range raslog.Catalog() {
		if e.Sev == raslog.Warn && e.Cat == cat {
			return e, true
		}
	}
	return raslog.CatalogEntry{}, false
}

// expandIncident renders one incident into its burst of FATAL events, plus
// (with probability PrecursorProb) a handful of WARN precursors on the same
// hardware in the PrecursorLead window before the incident — the signal the
// lead-time analysis (E16) mines. Each incident is expanded from its own
// deterministic RNG, so the bursts fan out across workers; record ids are
// assigned by the caller once the full stream is assembled.
func expandIncident(cfg *Config, rng *rand.Rand, inc *incident) []raslog.Event {
	events := make([]raslog.Event, 0, inc.events)
	if warnEntry, ok := warnPrecursorFor(inc.entry.Cat); ok && rng.Float64() < cfg.PrecursorProb {
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			lead := time.Duration((0.05 + 0.95*rng.Float64()) * float64(cfg.PrecursorLead))
			if inc.at.Add(-lead).Before(cfg.Start) {
				lead = inc.at.Sub(cfg.Start) / 2
			}
			events = append(events, raslog.Event{
				MsgID:   warnEntry.MsgID,
				Comp:    warnEntry.Comp,
				Cat:     warnEntry.Cat,
				Sev:     raslog.Warn,
				Time:    inc.at.Add(-lead),
				Loc:     jitterLocation(rng, inc.loc, warnEntry.LocLevel),
				Message: warnEntry.Message,
				Count:   1 + rng.Intn(8),
			})
		}
	}
	for i := 0; i < inc.events; i++ {
		at := inc.at
		if i > 0 {
			at = at.Add(time.Duration(rng.Float64() * float64(cfg.CascadeWindow)))
		}
		loc := jitterLocation(rng, inc.loc, inc.entry.LocLevel)
		events = append(events, raslog.Event{
			MsgID:   inc.entry.MsgID,
			Comp:    inc.entry.Comp,
			Cat:     inc.entry.Cat,
			Sev:     raslog.Fatal,
			Time:    at,
			Loc:     loc,
			JobID:   inc.killedJob,
			Message: inc.entry.Message,
			Count:   1 + rng.Intn(3),
		})
	}
	return events
}

// jitterLocation refines a root location down to the catalog entry's
// reporting level, choosing random child hardware. Cascade events from one
// incident therefore share a midplane/rack but differ at board/node level —
// exactly the near-duplicate structure similarity filtering coalesces.
func jitterLocation(rng *rand.Rand, root machine.Location, level machine.Level) machine.Location {
	r := root.RackIndex()
	m := root.MidplaneOrdinal()
	if root.Level() == machine.LevelRack {
		m = rng.Intn(machine.MidplanesPerRack)
	}
	switch level {
	case machine.LevelSystem, machine.LevelRack:
		loc, err := machine.Rack(r)
		if err != nil {
			return machine.System()
		}
		return loc
	case machine.LevelMidplane:
		loc, err := machine.Midplane(r, m)
		if err != nil {
			return machine.System()
		}
		return loc
	case machine.LevelNodeBoard:
		loc, err := machine.NodeBoard(r, m, rng.Intn(machine.NodeBoardsPerMid))
		if err != nil {
			return machine.System()
		}
		return loc
	default:
		loc, err := machine.Node(r, m, rng.Intn(machine.NodeBoardsPerMid), rng.Intn(machine.NodesPerBoard))
		if err != nil {
			return machine.System()
		}
		return loc
	}
}

// buildNoiseShard generates the background INFO/WARN RAS stream of one day
// shard (plus FATAL infra messages that never kill jobs) uniformly over the
// shard window with mildly skewed locations. Record ids are assigned by the
// caller once the full stream is assembled.
func buildNoiseShard(cfg *Config, sh dayShard, rng *rand.Rand) []raslog.Event {
	// Noise is overwhelmingly informational; warnings are a minority and
	// FATAL infra messages (service-node failover etc.) are rare, matching
	// the severity mix of production RAS streams.
	var entries []raslog.CatalogEntry
	var cum []float64
	totalW := 0.0
	for _, e := range raslog.Catalog() {
		var w float64
		switch {
		case e.MsgID == raslog.MsgServiceBegin || e.MsgID == raslog.MsgServiceEnd:
			continue // emitted only by the repair process, never as noise
		case e.Sev == raslog.Info:
			w = 1.0
		case e.Sev == raslog.Warn:
			w = 0.3
		case e.LocLevel == machine.LevelSystem:
			w = 0.001 // FATAL infra noise: a handful per year
		default:
			continue // localized FATALs come from the incident process
		}
		entries = append(entries, e)
		totalW += w
		cum = append(cum, totalW)
	}
	pick := func() raslog.CatalogEntry {
		r := rng.Float64() * totalW
		for i, c := range cum {
			if r <= c {
				return entries[i]
			}
		}
		return entries[len(entries)-1]
	}
	days := sh.Hi - sh.Lo
	total := int(cfg.NoisePerDay * float64(days))
	span := float64(days) * 24 * float64(time.Hour)
	start := cfg.Start.Add(time.Duration(sh.Lo) * 24 * time.Hour)
	events := make([]raslog.Event, 0, total)
	for i := 0; i < total; i++ {
		entry := pick()
		at := start.Add(time.Duration(rng.Float64() * span))
		var loc machine.Location
		if entry.LocLevel == machine.LevelSystem {
			loc = machine.System()
		} else {
			// Mild spatial skew for noise too: square the uniform to favor
			// low midplane IDs (where packing places most jobs).
			id := int(math.Floor(rng.Float64() * rng.Float64() * machine.TotalMidplanes))
			if id >= machine.TotalMidplanes {
				id = machine.TotalMidplanes - 1
			}
			mid, err := machine.MidplaneByID(id)
			if err != nil {
				continue
			}
			loc = jitterLocation(rng, mid, entry.LocLevel)
		}
		events = append(events, raslog.Event{
			MsgID:   entry.MsgID,
			Comp:    entry.Comp,
			Cat:     entry.Cat,
			Sev:     entry.Sev,
			Time:    at,
			Loc:     loc,
			Message: entry.Message,
			Count:   1,
		})
	}
	return events
}
