package sim

import (
	"testing"
	"time"

	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/tasklog"
)

// genSmall generates (and caches) a small corpus shared by the tests.
var smallCorpus *Corpus

func small(t *testing.T) *Corpus {
	t.Helper()
	if smallCorpus == nil {
		c, err := Generate(SmallConfig())
		if err != nil {
			t.Fatal(err)
		}
		smallCorpus = c
	}
	return smallCorpus
}

func TestConfigValidate(t *testing.T) {
	good := SmallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.Start = time.Time{} },
		func(c *Config) { c.NumUsers = 0 },
		func(c *Config) { c.JobsPerDay = 0 },
		func(c *Config) { c.MeanFailProb = 0 },
		func(c *Config) { c.MeanFailProb = 1 },
		func(c *Config) { c.IncidentsPerYear = -1 },
		func(c *Config) { c.CascadeMeanEvents = 0 },
		func(c *Config) { c.CascadeWindow = 0 },
		func(c *Config) { c.HotMidplanes = 200 },
		func(c *Config) { c.HotHazardShare = 1.5 },
		func(c *Config) { c.IOSampling = 0 },
		func(c *Config) { c.Policy = 0 },
		func(c *Config) { c.PrecursorProb = -0.1 },
		func(c *Config) { c.PrecursorLead = 0 },
		func(c *Config) { c.NeighborSpread = 2 },
		func(c *Config) { c.ResubmitProb = -1 },
		func(c *Config) { c.MaxQueue = -5 },
		func(c *Config) { c.RepairMedian = 0 },
	}
	for i, mutate := range mutations {
		c := SmallConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := Generate(c); err == nil {
			t.Errorf("mutation %d generated", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SmallConfig()
	cfg.Days = 7
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(b.Jobs) || len(a.Events) != len(b.Events) ||
		len(a.Tasks) != len(b.Tasks) || len(a.IO) != len(b.IO) {
		t.Fatalf("non-deterministic sizes: %d/%d jobs, %d/%d events",
			len(a.Jobs), len(b.Jobs), len(a.Events), len(b.Events))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	// A different seed must give a different corpus.
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Jobs) == len(a.Jobs) && len(c.Events) == len(a.Events) &&
		len(c.Jobs) > 0 && c.Jobs[0] == a.Jobs[0] {
		t.Error("different seeds produced identical corpora")
	}
}

func TestJobsValid(t *testing.T) {
	c := small(t)
	if len(c.Jobs) < 1000 {
		t.Fatalf("only %d jobs in 30 days", len(c.Jobs))
	}
	for i := range c.Jobs {
		if err := c.Jobs[i].Validate(); err != nil {
			t.Fatalf("invalid job: %v", err)
		}
		if c.Jobs[i].Runtime() > c.Jobs[i].WalltimeReq+time.Second {
			// System kills can exceed nothing; natural ends are bounded by
			// construction (duration ≤ walltime for successes, walltime
			// raised above duration for failures).
			if c.Jobs[i].ExitStatus != joblog.ExitSystemReserved {
				t.Fatalf("job %d ran past its walltime: run=%v wall=%v exit=%d",
					c.Jobs[i].ID, c.Jobs[i].Runtime(), c.Jobs[i].WalltimeReq, c.Jobs[i].ExitStatus)
			}
		}
	}
}

func TestTasksConsistent(t *testing.T) {
	c := small(t)
	byJob := tasklog.ByJob(c.Tasks)
	if len(byJob) != len(c.Jobs) {
		t.Fatalf("tasks cover %d jobs, corpus has %d", len(byJob), len(c.Jobs))
	}
	for i := range c.Jobs {
		j := &c.Jobs[i]
		tasks := byJob[j.ID]
		if len(tasks) != j.NumTasks {
			t.Fatalf("job %d: %d tasks, declared %d", j.ID, len(tasks), j.NumTasks)
		}
		last := tasks[len(tasks)-1]
		if last.ExitStatus != j.ExitStatus {
			t.Fatalf("job %d: final task exit %d != job exit %d", j.ID, last.ExitStatus, j.ExitStatus)
		}
		for k := range tasks {
			if err := tasks[k].Validate(); err != nil {
				t.Fatalf("job %d task: %v", j.ID, err)
			}
			if tasks[k].Start.Before(j.Start) || tasks[k].End.After(j.End.Add(time.Second)) {
				t.Fatalf("job %d task outside job interval", j.ID)
			}
			if tasks[k].Block.Nodes() < j.Nodes {
				t.Fatalf("job %d block smaller than job", j.ID)
			}
		}
	}
}

func TestIOReferencesJobs(t *testing.T) {
	c := small(t)
	ids := make(map[int64]bool, len(c.Jobs))
	for i := range c.Jobs {
		ids[c.Jobs[i].ID] = true
	}
	if len(c.IO) == 0 {
		t.Fatal("no IO records")
	}
	frac := float64(len(c.IO)) / float64(len(c.Jobs))
	if frac < c.Config.IOSampling-0.1 || frac > c.Config.IOSampling+0.1 {
		t.Errorf("io sampling fraction %v, configured %v", frac, c.Config.IOSampling)
	}
	for i := range c.IO {
		if !ids[c.IO[i].JobID] {
			t.Fatalf("io record for unknown job %d", c.IO[i].JobID)
		}
		if err := c.IO[i].Validate(); err != nil {
			t.Fatalf("invalid io record: %v", err)
		}
	}
}

func TestEventsSortedAndValid(t *testing.T) {
	c := small(t)
	if len(c.Events) == 0 {
		t.Fatal("no RAS events")
	}
	catalog := raslog.CatalogByID()
	for i := range c.Events {
		e := &c.Events[i]
		if i > 0 && e.Time.Before(c.Events[i-1].Time) {
			t.Fatalf("events not sorted at %d", i)
		}
		if e.RecID != int64(i+1) {
			t.Fatalf("rec ids not sequential at %d", i)
		}
		entry, ok := catalog[e.MsgID]
		if !ok {
			t.Fatalf("event %d has unknown msg id %s", i, e.MsgID)
		}
		if entry.Sev != e.Sev || entry.Comp != e.Comp || entry.Cat != e.Cat {
			t.Fatalf("event %d inconsistent with catalog", i)
		}
	}
}

func TestTruthConsistent(t *testing.T) {
	c := small(t)
	tr := c.Truth
	if tr.SucceededJobs+tr.UserFailedJobs+tr.SystemKilledJobs != len(c.Jobs) {
		t.Errorf("truth outcome counts %d+%d+%d != %d jobs",
			tr.SucceededJobs, tr.UserFailedJobs, tr.SystemKilledJobs, len(c.Jobs))
	}
	systemJobs := 0
	for i := range c.Jobs {
		if c.Jobs[i].ExitStatus == joblog.ExitSystemReserved {
			systemJobs++
		}
	}
	if systemJobs != tr.SystemKilledJobs {
		t.Errorf("system-killed: truth %d, corpus %d", tr.SystemKilledJobs, systemJobs)
	}
	if tr.KillingIncidents > tr.Incidents {
		t.Errorf("killing incidents %d > incidents %d", tr.KillingIncidents, tr.Incidents)
	}
	if tr.SystemKilledJobs < tr.KillingIncidents {
		t.Errorf("each killing incident kills ≥1 job: %d < %d", tr.SystemKilledJobs, tr.KillingIncidents)
	}
	// Failure mix sanity: user failures dominate.
	if tr.UserFailedJobs <= 10*tr.SystemKilledJobs {
		t.Errorf("user/system failure ratio too low: %d vs %d", tr.UserFailedJobs, tr.SystemKilledJobs)
	}
	failRate := float64(tr.UserFailedJobs) / float64(len(c.Jobs))
	if failRate < 0.15 || failRate > 0.45 {
		t.Errorf("user failure rate %v outside sane band", failRate)
	}
}

func TestSystemKilledJobsHaveFatalEvents(t *testing.T) {
	c := small(t)
	attributed := map[int64]bool{}
	for i := range c.Events {
		if c.Events[i].Sev == raslog.Fatal && c.Events[i].JobID != 0 {
			attributed[c.Events[i].JobID] = true
		}
	}
	// Every first-victim job of a killing incident is attributed; jobs
	// killed as secondary victims of a rack-level incident may not be. So
	// the attributed set must be non-empty and every attributed job must be
	// a system-killed job.
	if len(attributed) == 0 && c.Truth.KillingIncidents > 0 {
		t.Fatal("no FATAL event attributed to any killed job")
	}
	byID := map[int64]*joblog.Job{}
	for i := range c.Jobs {
		byID[c.Jobs[i].ID] = &c.Jobs[i]
	}
	for id := range attributed {
		j, ok := byID[id]
		if !ok {
			t.Fatalf("attributed job %d not in corpus", id)
		}
		if j.ExitStatus != joblog.ExitSystemReserved {
			t.Errorf("attributed job %d has exit %d, want system", id, j.ExitStatus)
		}
	}
	if got := len(attributed); got != c.Truth.KillingIncidents {
		// One job can be the first victim of only one incident (it dies),
		// and each killing incident has exactly one first victim.
		t.Errorf("attributed jobs %d != killing incidents %d", got, c.Truth.KillingIncidents)
	}
}

func TestJobIDsUniqueAndOrdered(t *testing.T) {
	c := small(t)
	seen := map[int64]bool{}
	for i := range c.Jobs {
		id := c.Jobs[i].ID
		if seen[id] {
			t.Fatalf("duplicate job id %d", id)
		}
		seen[id] = true
		if i > 0 && id <= c.Jobs[i-1].ID {
			t.Fatalf("jobs not sorted by id at %d", i)
		}
	}
}

func TestDurationLawsComplete(t *testing.T) {
	laws := DurationLaws()
	for _, f := range failureMixBase {
		if _, ok := laws[f.family]; !ok {
			t.Errorf("no duration law for family %s", f.family)
		}
	}
	names := map[string]bool{}
	for _, d := range laws {
		names[d.Name()] = true
	}
	// The paper's four families must all be injected.
	for _, want := range []string{"weibull", "pareto", "inverse-gaussian", "exponential", "erlang"} {
		if !names[want] {
			t.Errorf("law family %s not injected", want)
		}
	}
}
