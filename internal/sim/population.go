package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/joblog"
)

// scaleClass buckets users by the size of jobs they typically run.
type scaleClass int

const (
	scaleSmall scaleClass = iota
	scaleMedium
	scaleLarge
)

// blockSizes are the schedulable job sizes in nodes.
var blockSizes = []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 49152}

// sizeWeights gives the per-class probability of each block size. The mix
// reproduces the capability-machine skew of Mira: small blocks are the most
// frequent jobs while large blocks dominate core-hours.
var sizeWeights = map[scaleClass][]float64{
	scaleSmall:  {0.52, 0.26, 0.14, 0.06, 0.02, 0, 0, 0},
	scaleMedium: {0.18, 0.22, 0.26, 0.18, 0.10, 0.05, 0.01, 0},
	scaleLarge:  {0.04, 0.08, 0.16, 0.22, 0.24, 0.16, 0.08, 0.02},
}

// failureMixBase is the global probability of each user-failure family
// among failed jobs. Per-user mixes are Dirichlet perturbations of it.
var failureMixBase = []struct {
	family joblog.ExitFamily
	exit   int
	weight float64
}{
	{joblog.FamilyError, joblog.ExitGeneralError, 0.34},
	{joblog.FamilyConfig, joblog.ExitMisuse, 0.18},
	{joblog.FamilyKilled, joblog.ExitSigKill, 0.16},
	{joblog.FamilyAbort, joblog.ExitSigAbort, 0.12},
	{joblog.FamilySegfault, joblog.ExitSigSegv, 0.12},
	{joblog.FamilyTerm, joblog.ExitSigTerm, 0.08},
}

// DurationLaws returns the ground-truth execution-length law injected for
// each user-failure exit family — the paper's best-fit families (Weibull,
// Pareto, inverse Gaussian, Erlang/exponential). Experiment E6 must recover
// these from the corpus.
func DurationLaws() map[joblog.ExitFamily]dist.Distribution {
	weibull, err := dist.NewWeibull(0.62, 2100)
	if err != nil {
		panic(err)
	}
	expo, err := dist.NewExponential(1.0 / 950)
	if err != nil {
		panic(err)
	}
	erlang, err := dist.NewErlang(3, 3.0/5400)
	if err != nil {
		panic(err)
	}
	invg, err := dist.NewInverseGaussian(10800, 32000)
	if err != nil {
		panic(err)
	}
	pareto, err := dist.NewPareto(45, 1.25)
	if err != nil {
		panic(err)
	}
	lnorm, err := dist.NewLogNormal(8.0, 1.05)
	if err != nil {
		panic(err)
	}
	return map[joblog.ExitFamily]dist.Distribution{
		joblog.FamilyError:    weibull, // infant mortality: crash soon after start
		joblog.FamilyConfig:   expo,    // misconfiguration: memoryless
		joblog.FamilyAbort:    erlang,  // staged assertion failures
		joblog.FamilyKilled:   invg,    // walltime-style kills cluster at a mode
		joblog.FamilySegfault: pareto,  // heavy tail: long runs that finally fault
		joblog.FamilyTerm:     lnorm,   // user deletes
	}
}

// user is one synthetic user profile.
type user struct {
	name     string
	project  string
	weight   float64 // activity weight (Zipf-like)
	failProb float64 // per-job probability of a user-caused failure
	class    scaleClass
	// failCum is the cumulative distribution over failureMixBase entries.
	failCum []float64
	// walltimeMu is the per-user median of ln(requested walltime seconds).
	walltimeMu float64
	// ioScale multiplies the project's I/O volume profile.
	ioScale float64
}

// population is the generated user/project universe.
type population struct {
	users   []user
	userCum []float64 // cumulative activity weights for sampling
}

// buildPopulation creates cfg.NumUsers users over cfg.NumProjects projects
// with Zipf activity, lognormal-perturbed failure propensities and a
// size-class mix.
func buildPopulation(cfg *Config, rng *rand.Rand) *population {
	p := &population{users: make([]user, cfg.NumUsers)}
	totalW := 0.0
	for i := range p.users {
		u := &p.users[i]
		u.name = fmt.Sprintf("u%04d", i+1)
		u.project = fmt.Sprintf("prj%03d", rng.Intn(cfg.NumProjects)+1)
		// Zipf-ish activity: weight ∝ 1/rank^0.85, shuffled by the random
		// project assignment above so rank order is not id order.
		u.weight = 1 / math.Pow(float64(i+1), 0.85)
		// Per-user failure propensity: lognormal spread around the mean,
		// clamped to keep probabilities sane. Some users are very buggy
		// (propensity near 0.9), many rarely fail.
		u.failProb = clamp(cfg.MeanFailProb*math.Exp(0.85*rng.NormFloat64()-0.36), 0.01, 0.92)
		switch r := rng.Float64(); {
		case r < 0.45:
			u.class = scaleSmall
		case r < 0.85:
			u.class = scaleMedium
		default:
			u.class = scaleLarge
		}
		u.failCum = dirichletCum(rng, 9)
		u.walltimeMu = math.Log(4450) + 0.5*rng.NormFloat64() + float64(u.class)*0.45
		u.ioScale = math.Exp(0.9 * rng.NormFloat64())
		totalW += u.weight
	}
	p.userCum = make([]float64, len(p.users))
	cum := 0.0
	for i := range p.users {
		cum += p.users[i].weight / totalW
		p.userCum[i] = cum
	}
	p.userCum[len(p.userCum)-1] = 1
	return p
}

// dirichletCum draws a Dirichlet perturbation of failureMixBase with
// concentration alpha and returns its cumulative distribution.
func dirichletCum(rng *rand.Rand, alpha float64) []float64 {
	raw := make([]float64, len(failureMixBase))
	total := 0.0
	for i, f := range failureMixBase {
		g, err := dist.NewGamma(alpha*f.weight*float64(len(failureMixBase)), 1)
		if err != nil {
			panic(err)
		}
		raw[i] = g.Rand(rng)
		total += raw[i]
	}
	cum := make([]float64, len(raw))
	c := 0.0
	for i, v := range raw {
		c += v / total
		cum[i] = c
	}
	cum[len(cum)-1] = 1
	return cum
}

// pickUser samples a user index by activity weight.
func (p *population) pickUser(rng *rand.Rand) *user {
	r := rng.Float64()
	lo, hi := 0, len(p.userCum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.userCum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &p.users[lo]
}

// pickFailure samples an exit family + status from the user's failure mix.
func (u *user) pickFailure(rng *rand.Rand) (joblog.ExitFamily, int) {
	r := rng.Float64()
	for i, c := range u.failCum {
		if r <= c {
			return failureMixBase[i].family, failureMixBase[i].exit
		}
	}
	last := failureMixBase[len(failureMixBase)-1]
	return last.family, last.exit
}

// pickSize samples a block size in nodes from the user's class mix.
func (u *user) pickSize(rng *rand.Rand) int {
	w := sizeWeights[u.class]
	r := rng.Float64()
	cum := 0.0
	for i, v := range w {
		cum += v
		if r <= cum {
			return blockSizes[i]
		}
	}
	return blockSizes[0]
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
