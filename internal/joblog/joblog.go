// Package joblog models the Cobalt-style job-scheduling log of Mira: one
// record per job with submission/start/end times, user, project, queue,
// size, mode and exit status. It provides the exit-status taxonomy the
// paper's failure classification builds on, and CSV encode/decode for
// corpus files.
package joblog

import (
	"fmt"
	"io"
	"time"

	"repro/internal/fastcsv"
)

// Exit statuses follow the POSIX shell convention: 0 is success, 1–127 are
// program-chosen error codes, 128+n means "terminated by signal n". Cobalt
// records the scheduler-visible status of the job script.
const (
	ExitSuccess        = 0   // clean completion
	ExitGeneralError   = 1   // generic user-code error
	ExitMisuse         = 2   // wrong invocation / misconfiguration
	ExitIOError        = 5   // I/O failure reported by the application
	ExitResourceError  = 12  // out-of-memory style resource exhaustion
	ExitSigAbort       = 134 // 128+SIGABRT: assertion failure / abort()
	ExitSigKill        = 137 // 128+SIGKILL: killed (walltime limit)
	ExitSigSegv        = 139 // 128+SIGSEGV: segmentation fault
	ExitSigTerm        = 143 // 128+SIGTERM: terminated (user delete)
	ExitSystemReserved = 320 // scheduler-assigned: block failure (system)
)

// Outcome is the coarse job outcome derived from the exit status alone.
type Outcome int

// Outcome values.
const (
	OutcomeSuccess Outcome = iota + 1
	OutcomeFailure
)

// String returns "success" or "failure".
func (o Outcome) String() string {
	if o == OutcomeSuccess {
		return "success"
	}
	return "failure"
}

// Job is one record of the scheduling log.
type Job struct {
	ID           int64
	User         string
	Project      string
	Queue        string
	Submit       time.Time
	Start        time.Time
	End          time.Time
	WalltimeReq  time.Duration // requested walltime
	Nodes        int           // allocated compute nodes
	RanksPerNode int           // BG/Q mode (c1..c64); cores used per node
	NumTasks     int           // number of physical execution tasks (runs)
	ExitStatus   int
}

// Runtime returns the wall-clock execution length of the job.
func (j *Job) Runtime() time.Duration { return j.End.Sub(j.Start) }

// QueueWait returns how long the job waited between submission and start.
func (j *Job) QueueWait() time.Duration { return j.Start.Sub(j.Submit) }

// CoreSeconds returns the consumed core-seconds (nodes × 16 cores ×
// runtime) as an exact integer. Integer core-seconds are the canonical
// accumulator for corpus-wide consumption sums: integer addition is
// order-insensitive, so sharded scans merge to bit-identical totals.
func (j *Job) CoreSeconds() int64 {
	return int64(j.Nodes) * 16 * int64(j.Runtime()/time.Second)
}

// CoreHours returns the consumed core-hours (nodes × 16 cores × runtime).
// Not defined as CoreSeconds()/3600: the float expression below rounds
// differently in the last bit for some jobs, and the simulator feeds it
// into draws, so redefining it would change generated corpora.
func (j *Job) CoreHours() float64 {
	return float64(j.Nodes) * 16 * j.Runtime().Hours()
}

// Outcome classifies the job by exit status.
func (j *Job) Outcome() Outcome {
	if j.ExitStatus == ExitSuccess {
		return OutcomeSuccess
	}
	return OutcomeFailure
}

// ExitFamily groups exit statuses into the families the paper fits
// distributions per (Table of best-fit laws per exit code).
type ExitFamily string

// Exit families.
const (
	FamilySuccess  ExitFamily = "success"
	FamilyError    ExitFamily = "error"    // exit 1: generic runtime error
	FamilyConfig   ExitFamily = "config"   // exit 2/5/12: misuse & resources
	FamilyAbort    ExitFamily = "abort"    // SIGABRT
	FamilyKilled   ExitFamily = "killed"   // SIGKILL (walltime)
	FamilySegfault ExitFamily = "segfault" // SIGSEGV
	FamilyTerm     ExitFamily = "term"     // SIGTERM (user delete)
	FamilySystem   ExitFamily = "system"   // scheduler block failure
	FamilyOther    ExitFamily = "other"
)

// Family maps an exit status to its family.
func Family(exitStatus int) ExitFamily {
	switch exitStatus {
	case ExitSuccess:
		return FamilySuccess
	case ExitGeneralError:
		return FamilyError
	case ExitMisuse, ExitIOError, ExitResourceError:
		return FamilyConfig
	case ExitSigAbort:
		return FamilyAbort
	case ExitSigKill:
		return FamilyKilled
	case ExitSigSegv:
		return FamilySegfault
	case ExitSigTerm:
		return FamilyTerm
	case ExitSystemReserved:
		return FamilySystem
	default:
		return FamilyOther
	}
}

// FailureFamilies lists the non-success families in report order.
func FailureFamilies() []ExitFamily {
	return []ExitFamily{
		FamilyError, FamilyConfig, FamilyAbort, FamilyKilled,
		FamilySegfault, FamilyTerm, FamilySystem, FamilyOther,
	}
}

// NumFamilies is the number of distinct exit families: success plus the
// eight failure families.
const NumFamilies = 9

// familyCodes assigns each family its dense code: 0 is success, 1..8 follow
// FailureFamilies order. codeFamilies is the inverse table.
var (
	familyCodes = map[ExitFamily]uint8{
		FamilySuccess: 0, FamilyError: 1, FamilyConfig: 2, FamilyAbort: 3,
		FamilyKilled: 4, FamilySegfault: 5, FamilyTerm: 6, FamilySystem: 7,
		FamilyOther: 8,
	}
	codeFamilies = [NumFamilies]ExitFamily{
		FamilySuccess, FamilyError, FamilyConfig, FamilyAbort, FamilyKilled,
		FamilySegfault, FamilyTerm, FamilySystem, FamilyOther,
	}
)

// FamilyCode returns the dense code of f (see NumFamilies). Unknown family
// strings map to the FamilyOther code.
func FamilyCode(f ExitFamily) uint8 {
	c, ok := familyCodes[f]
	if !ok {
		return familyCodes[FamilyOther]
	}
	return c
}

// FamilyCodeOf returns the dense family code of an exit status:
// FamilyCode(Family(exitStatus)).
func FamilyCodeOf(exitStatus int) uint8 {
	return FamilyCode(Family(exitStatus))
}

// FamilyOfCode returns the family for a dense code; out-of-range codes map
// to FamilyOther.
func FamilyOfCode(c uint8) ExitFamily {
	if int(c) >= NumFamilies {
		return FamilyOther
	}
	return codeFamilies[c]
}

// header is the CSV schema for job logs.
var header = []string{
	"job_id", "user", "project", "queue", "submit_unix", "start_unix",
	"end_unix", "walltime_req_s", "nodes", "ranks_per_node", "num_tasks",
	"exit_status",
}

// writeJob encodes one job row.
func writeJob(fw *fastcsv.Writer, j *Job) {
	fw.Int64(j.ID)
	fw.String(j.User)
	fw.String(j.Project)
	fw.String(j.Queue)
	fw.Int64(j.Submit.Unix())
	fw.Int64(j.Start.Unix())
	fw.Int64(j.End.Unix())
	fw.Int64(int64(j.WalltimeReq / time.Second))
	fw.Int(j.Nodes)
	fw.Int(j.RanksPerNode)
	fw.Int(j.NumTasks)
	fw.Int(j.ExitStatus)
	fw.EndRecord()
}

// WriteCSV writes jobs to w in the package schema, header first.
func WriteCSV(w io.Writer, jobs []Job) error {
	fw := fastcsv.NewWriter(w)
	for _, h := range header {
		fw.String(h)
	}
	fw.EndRecord()
	for i := range jobs {
		writeJob(fw, &jobs[i])
	}
	if err := fw.Flush(); err != nil {
		return fmt.Errorf("joblog: write jobs: %w", err)
	}
	return nil
}

// headerOK checks field count plus leading column name, the same test the
// encoding/csv codec applied.
func headerOK(first [][]byte) bool {
	return len(first) == len(header) && string(first[0]) == header[0]
}

func headerStrings(rec [][]byte) []string {
	out := make([]string, len(rec))
	for i, f := range rec {
		out[i] = string(f)
	}
	return out
}

// decoder interns the user/project/queue vocabulary, which repeats across
// nearly every row of a multi-year scheduler log.
type decoder struct {
	intern *fastcsv.Interner
}

func newDecoder() *decoder { return &decoder{intern: fastcsv.NewInterner()} }

// ReadCSV reads a job log written by WriteCSV.
func ReadCSV(r io.Reader) ([]Job, error) {
	cr := fastcsv.NewReader(r)
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("joblog: read header: %w", err)
	}
	if !headerOK(first) {
		return nil, fmt.Errorf("joblog: unexpected header %v", headerStrings(first))
	}
	dec := newDecoder()
	var jobs []Job
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("joblog: line %d: %w", line, err)
		}
		j, err := dec.parseRow(rec)
		if err != nil {
			return nil, fmt.Errorf("joblog: line %d: %w", line, err)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

func (d *decoder) parseRow(rec [][]byte) (Job, error) {
	if len(rec) != len(header) {
		return Job{}, fmt.Errorf("want %d fields, got %d", len(header), len(rec))
	}
	var j Job
	var err error
	if j.ID, err = fastcsv.Int64(rec[0]); err != nil {
		return Job{}, fmt.Errorf("job_id: %w", err)
	}
	j.User = d.intern.Intern(rec[1])
	j.Project = d.intern.Intern(rec[2])
	j.Queue = d.intern.Intern(rec[3])
	var ints [4]int64
	for n, idx := range [...]int{4, 5, 6, 7} {
		v, err := fastcsv.Int64(rec[idx])
		if err != nil {
			return Job{}, fmt.Errorf("%s: %w", header[idx], err)
		}
		ints[n] = v
	}
	j.Submit = time.Unix(ints[0], 0).UTC()
	j.Start = time.Unix(ints[1], 0).UTC()
	j.End = time.Unix(ints[2], 0).UTC()
	j.WalltimeReq = time.Duration(ints[3]) * time.Second
	for _, f := range [...]struct {
		idx int
		dst *int
	}{{8, &j.Nodes}, {9, &j.RanksPerNode}, {10, &j.NumTasks}, {11, &j.ExitStatus}} {
		v, err := fastcsv.Int(rec[f.idx])
		if err != nil {
			return Job{}, fmt.Errorf("%s: %w", header[f.idx], err)
		}
		*f.dst = v
	}
	return j, nil
}

// Validate performs sanity checks used by tests and the generator.
func (j *Job) Validate() error {
	switch {
	case j.ID <= 0:
		return fmt.Errorf("joblog: job %d: non-positive id", j.ID)
	case j.User == "" || j.Project == "":
		return fmt.Errorf("joblog: job %d: missing user/project", j.ID)
	case j.Start.Before(j.Submit):
		return fmt.Errorf("joblog: job %d: starts before submit", j.ID)
	case j.End.Before(j.Start):
		return fmt.Errorf("joblog: job %d: ends before start", j.ID)
	case j.Nodes <= 0:
		return fmt.Errorf("joblog: job %d: non-positive nodes", j.ID)
	case j.RanksPerNode <= 0:
		return fmt.Errorf("joblog: job %d: non-positive ranks per node", j.ID)
	case j.NumTasks <= 0:
		return fmt.Errorf("joblog: job %d: non-positive tasks", j.ID)
	}
	return nil
}
