package joblog

import (
	"fmt"
	"time"
)

// Columns is the column-major decomposition of a job log, the shape the
// binary corpus snapshot (internal/pack) stores. Times are unix seconds and
// the requested walltime is whole seconds, matching the CSV schema, so a
// job survives CSV → columns → CSV byte-identically.
type Columns struct {
	ID       []int64
	User     []string
	Project  []string
	Queue    []string
	Submit   []int64 // unix seconds
	Start    []int64 // unix seconds
	End      []int64 // unix seconds
	Walltime []int64 // requested walltime, seconds
	Nodes    []int64
	Ranks    []int64
	NumTasks []int64
	Exit     []int64
}

// Rows returns the number of jobs the columns hold.
func (c *Columns) Rows() int { return len(c.ID) }

// ToColumns decomposes jobs column-major.
func ToColumns(jobs []Job) *Columns {
	n := len(jobs)
	c := &Columns{
		ID:       make([]int64, n),
		User:     make([]string, n),
		Project:  make([]string, n),
		Queue:    make([]string, n),
		Submit:   make([]int64, n),
		Start:    make([]int64, n),
		End:      make([]int64, n),
		Walltime: make([]int64, n),
		Nodes:    make([]int64, n),
		Ranks:    make([]int64, n),
		NumTasks: make([]int64, n),
		Exit:     make([]int64, n),
	}
	for i := range jobs {
		j := &jobs[i]
		c.ID[i] = j.ID
		c.User[i] = j.User
		c.Project[i] = j.Project
		c.Queue[i] = j.Queue
		c.Submit[i] = j.Submit.Unix()
		c.Start[i] = j.Start.Unix()
		c.End[i] = j.End.Unix()
		c.Walltime[i] = int64(j.WalltimeReq / time.Second)
		c.Nodes[i] = int64(j.Nodes)
		c.Ranks[i] = int64(j.RanksPerNode)
		c.NumTasks[i] = int64(j.NumTasks)
		c.Exit[i] = int64(j.ExitStatus)
	}
	return c
}

// FromColumns rehydrates jobs row-major. It is the inverse of ToColumns.
func FromColumns(c *Columns) ([]Job, error) {
	n := c.Rows()
	for name, col := range map[string]int{
		"user": len(c.User), "project": len(c.Project), "queue": len(c.Queue),
		"submit": len(c.Submit), "start": len(c.Start), "end": len(c.End),
		"walltime": len(c.Walltime), "nodes": len(c.Nodes), "ranks": len(c.Ranks),
		"num_tasks": len(c.NumTasks), "exit": len(c.Exit),
	} {
		if col != n {
			return nil, fmt.Errorf("joblog: column %s has %d rows, want %d", name, col, n)
		}
	}
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			ID:           c.ID[i],
			User:         c.User[i],
			Project:      c.Project[i],
			Queue:        c.Queue[i],
			Submit:       time.Unix(c.Submit[i], 0).UTC(),
			Start:        time.Unix(c.Start[i], 0).UTC(),
			End:          time.Unix(c.End[i], 0).UTC(),
			WalltimeReq:  time.Duration(c.Walltime[i]) * time.Second,
			Nodes:        int(c.Nodes[i]),
			RanksPerNode: int(c.Ranks[i]),
			NumTasks:     int(c.NumTasks[i]),
			ExitStatus:   int(c.Exit[i]),
		}
	}
	return jobs, nil
}
