package joblog

import (
	"fmt"
	"io"

	"repro/internal/fastcsv"
)

// Scanner streams a job CSV log one record at a time; the scheduler log of
// a multi-year window need not fit in memory for single-pass analyses.
type Scanner struct {
	cr   *fastcsv.Reader
	dec  *decoder
	cur  Job
	err  error
	line int
	done bool
}

// NewScanner validates the header and returns a streaming reader.
func NewScanner(r io.Reader) (*Scanner, error) {
	cr := fastcsv.NewReader(r)
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("joblog: read header: %w", err)
	}
	if !headerOK(first) {
		return nil, fmt.Errorf("joblog: unexpected header %v", headerStrings(first))
	}
	return &Scanner{cr: cr, dec: newDecoder(), line: 1}, nil
}

// Scan advances to the next job; false at EOF or error (check Err).
func (s *Scanner) Scan() bool {
	if s.done || s.err != nil {
		return false
	}
	s.line++
	rec, err := s.cr.Read()
	if err == io.EOF {
		s.done = true
		return false
	}
	if err != nil {
		s.err = fmt.Errorf("joblog: line %d: %w", s.line, err)
		return false
	}
	j, err := s.dec.parseRow(rec)
	if err != nil {
		s.err = fmt.Errorf("joblog: line %d: %w", s.line, err)
		return false
	}
	s.cur = j
	return true
}

// Job returns the current record. Valid after a true Scan.
func (s *Scanner) Job() Job { return s.cur }

// Err returns the first error encountered, if any.
func (s *Scanner) Err() error { return s.err }
