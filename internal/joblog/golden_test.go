package joblog

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"testing"
	"time"
)

// legacyWriteCSV is a verbatim copy of the encoding/csv-based encoder this
// package shipped before the fastcsv migration.
func legacyWriteCSV(w io.Writer, jobs []Job) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("joblog: write header: %w", err)
	}
	row := make([]string, len(header))
	for i := range jobs {
		j := &jobs[i]
		row[0] = strconv.FormatInt(j.ID, 10)
		row[1] = j.User
		row[2] = j.Project
		row[3] = j.Queue
		row[4] = strconv.FormatInt(j.Submit.Unix(), 10)
		row[5] = strconv.FormatInt(j.Start.Unix(), 10)
		row[6] = strconv.FormatInt(j.End.Unix(), 10)
		row[7] = strconv.FormatInt(int64(j.WalltimeReq/time.Second), 10)
		row[8] = strconv.Itoa(j.Nodes)
		row[9] = strconv.Itoa(j.RanksPerNode)
		row[10] = strconv.Itoa(j.NumTasks)
		row[11] = strconv.Itoa(j.ExitStatus)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("joblog: write job %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func goldenJobs() []Job {
	j1 := sampleJob()
	j2 := sampleJob()
	j2.ID = 12346
	j2.Project = `quoted "proj", with comma`
	j2.Queue = "backfill\nnl"
	j2.ExitStatus = ExitSuccess
	j3 := sampleJob()
	j3.ID = 12347
	j3.User = " spaced"
	return []Job{j1, j2, j3}
}

func TestWriteCSVMatchesLegacy(t *testing.T) {
	jobs := goldenJobs()
	var oldBuf, newBuf bytes.Buffer
	if err := legacyWriteCSV(&oldBuf, jobs); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&newBuf, jobs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oldBuf.Bytes(), newBuf.Bytes()) {
		t.Fatalf("fastcsv encoder output differs from legacy encoding/csv:\n old: %q\n new: %q",
			oldBuf.String(), newBuf.String())
	}
}

func TestReadCSVDecodesLegacyBytes(t *testing.T) {
	jobs := goldenJobs()
	var oldBuf bytes.Buffer
	if err := legacyWriteCSV(&oldBuf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&oldBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, jobs) {
		t.Fatalf("decoding legacy bytes: got %+v, want %+v", got, jobs)
	}
}
