package joblog

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleJob() Job {
	base := time.Date(2013, 4, 9, 12, 0, 0, 0, time.UTC)
	return Job{
		ID: 12345, User: "u0042", Project: "climate", Queue: "prod",
		Submit: base, Start: base.Add(30 * time.Minute),
		End: base.Add(2*time.Hour + 30*time.Minute), WalltimeReq: 4 * time.Hour,
		Nodes: 2048, RanksPerNode: 16, NumTasks: 3, ExitStatus: ExitSigSegv,
	}
}

func TestJobDerived(t *testing.T) {
	j := sampleJob()
	if got := j.Runtime(); got != 2*time.Hour {
		t.Errorf("Runtime = %v", got)
	}
	if got := j.QueueWait(); got != 30*time.Minute {
		t.Errorf("QueueWait = %v", got)
	}
	if got := j.CoreHours(); got != 2048*16*2 {
		t.Errorf("CoreHours = %v", got)
	}
	if j.Outcome() != OutcomeFailure {
		t.Error("segfault should be a failure")
	}
	j.ExitStatus = ExitSuccess
	if j.Outcome() != OutcomeSuccess {
		t.Error("exit 0 should be success")
	}
	if OutcomeSuccess.String() != "success" || OutcomeFailure.String() != "failure" {
		t.Error("outcome strings wrong")
	}
}

func TestFamily(t *testing.T) {
	tests := []struct {
		status int
		want   ExitFamily
	}{
		{0, FamilySuccess},
		{1, FamilyError},
		{2, FamilyConfig},
		{5, FamilyConfig},
		{12, FamilyConfig},
		{134, FamilyAbort},
		{137, FamilyKilled},
		{139, FamilySegfault},
		{143, FamilyTerm},
		{320, FamilySystem},
		{77, FamilyOther},
	}
	for _, tt := range tests {
		if got := Family(tt.status); got != tt.want {
			t.Errorf("Family(%d) = %s, want %s", tt.status, got, tt.want)
		}
	}
	if len(FailureFamilies()) != 8 {
		t.Errorf("FailureFamilies = %v", FailureFamilies())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	jobs := []Job{sampleJob()}
	j2 := sampleJob()
	j2.ID = 2
	j2.ExitStatus = 0
	j2.User = "u,with,commas" // CSV quoting must survive
	jobs = append(jobs, j2)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", jobs, back)
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	f := func(id int64, nodes uint16, exit uint8, startOff, durOff uint32) bool {
		if id <= 0 {
			id = -id + 1
		}
		base := time.Unix(1357000000, 0).UTC()
		j := Job{
			ID: id, User: "u1", Project: "p1", Queue: "prod",
			Submit: base, Start: base.Add(time.Duration(startOff) * time.Second),
			End:         base.Add(time.Duration(startOff) * time.Second).Add(time.Duration(durOff) * time.Second),
			WalltimeReq: time.Hour,
			Nodes:       int(nodes)%49152 + 1, RanksPerNode: 16,
			NumTasks: 1, ExitStatus: int(exit),
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, []Job{j}); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		return err == nil && len(back) == 1 && reflect.DeepEqual(back[0], j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "nope,b,c\n",
		"bad id":     strings.Join(append([]string{"job_id,user,project,queue,submit_unix,start_unix,end_unix,walltime_req_s,nodes,ranks_per_node,num_tasks,exit_status"}, "x,u,p,q,1,2,3,4,5,6,7,8"), "\n"),
		"short row":  "job_id,user,project,queue,submit_unix,start_unix,end_unix,walltime_req_s,nodes,ranks_per_node,num_tasks,exit_status\n1,u\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestValidate(t *testing.T) {
	good := sampleJob()
	if err := good.Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	cases := []func(*Job){
		func(j *Job) { j.ID = 0 },
		func(j *Job) { j.User = "" },
		func(j *Job) { j.Start = j.Submit.Add(-time.Minute) },
		func(j *Job) { j.End = j.Start.Add(-time.Minute) },
		func(j *Job) { j.Nodes = 0 },
		func(j *Job) { j.RanksPerNode = 0 },
		func(j *Job) { j.NumTasks = 0 },
	}
	for i, mutate := range cases {
		j := sampleJob()
		mutate(&j)
		if err := j.Validate(); err == nil {
			t.Errorf("case %d: invalid job accepted", i)
		}
	}
}

func TestScannerMatchesSlurp(t *testing.T) {
	jobs := []Job{sampleJob()}
	j2 := sampleJob()
	j2.ID = 2
	jobs = append(jobs, j2)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Job
	for sc.Scan() {
		streamed = append(streamed, sc.Job())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, streamed) {
		t.Error("scanner and slurp disagree")
	}
	if sc.Scan() {
		t.Error("Scan after EOF returned true")
	}
	if _, err := NewScanner(strings.NewReader("bad\n")); err == nil {
		t.Error("bad header accepted")
	}
	badRow, err := NewScanner(strings.NewReader(
		"job_id,user,project,queue,submit_unix,start_unix,end_unix,walltime_req_s,nodes,ranks_per_node,num_tasks,exit_status\nx,u,p,q,1,2,3,4,5,6,7,8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if badRow.Scan() || badRow.Err() == nil {
		t.Error("bad row not reported")
	}
}
