// Package scan is the fused single-pass aggregation engine. Analyses
// register kernels; the engine runs every registered kernel over each
// cache-sized block of a struct-of-arrays column view in one pass, so a
// suite of N analyses costs one sweep of memory traffic instead of N.
//
// # Kernel contract
//
// A Kernel is a factory for per-shard States. The engine calls NewState
// once per shard, feeds each state the shard's rows in block-sized chunks
// via ProcessBlock(view, lo, hi), and then reduces the shard states with a
// deterministic in-order pairwise tree of Merge calls. ProcessBlock must
// only touch rows [lo, hi) and must not retain the view; Merge must fold
// the other state into the receiver assuming other covers the rows
// immediately after the receiver's. Kernel finishing (turning the merged
// state into an analysis result) is the caller's job.
//
// # Determinism
//
// The shard plan is a pure function of the row count — ShardRows is fixed
// and does not depend on the worker count — so the set of partial states
// is identical for any parallelism. The reduction always merges neighbors
// in index order (state i absorbs state i+stride), so the merged state is
// the same fold for 1 worker or 64. Kernels whose Merge is associative
// over adjacent ranges therefore produce bit-identical results at any
// worker count; kernels that accumulate in integers (the house style, see
// DESIGN.md §13) are additionally immune to floating-point reassociation.
package scan

import (
	"context"
	"fmt"

	"repro/internal/par"
)

// Shard and block geometry. A shard is the unit of parallelism; a block is
// the unit of cache reuse: every kernel processes one block before the
// engine moves to the next, so the block's columns stay hot across all
// kernels. The values are fixed — NOT derived from GOMAXPROCS — because
// the shard plan is part of the determinism contract.
const (
	// ShardRows is the number of rows per parallel shard.
	ShardRows = 8192
	// BlockRows is the number of rows each ProcessBlock call sees. At
	// roughly 10 hot columns × 8 bytes, a 2048-row block is ~160 KiB —
	// comfortably L2-resident while every kernel takes its turn.
	BlockRows = 2048
)

// State is one kernel's partial aggregate over a contiguous row range.
type State[V any] interface {
	// ProcessBlock folds rows [lo, hi) of the view into the state.
	ProcessBlock(v V, lo, hi int)
	// Merge folds other — the state covering the rows immediately after
	// the receiver's — into the receiver.
	Merge(other State[V])
}

// Kernel is a registered analysis: a named factory for shard states.
type Kernel[V any] interface {
	// Name identifies the kernel in diagnostics.
	Name() string
	// NewState returns a fresh zero-valued partial aggregate.
	NewState() State[V]
}

// Run sweeps rows [0, n) of the view once, feeding every kernel each block,
// with shards fanned out over at most workers goroutines (≤ 0 means
// GOMAXPROCS). It returns one fully merged state per kernel, in kernel
// order. Results are bit-identical for any worker count.
func Run[V any](v V, n int, kernels []Kernel[V], workers int) ([]State[V], error) {
	if n < 0 {
		return nil, fmt.Errorf("scan: negative row count %d", n)
	}
	newStates := func() []State[V] {
		sts := make([]State[V], len(kernels))
		for i, k := range kernels {
			sts[i] = k.NewState()
		}
		return sts
	}
	shards := (n + ShardRows - 1) / ShardRows
	if shards <= 1 {
		// Serial fast path (also the empty-view path): one state set, one
		// block loop, no merge.
		sts := newStates()
		processShard(v, 0, n, sts)
		return sts, nil
	}
	states := make([][]State[V], shards)
	err := par.ForEach(context.Background(), shards, workers, func(s int) error {
		lo := s * ShardRows
		hi := min(lo+ShardRows, n)
		sts := newStates()
		processShard(v, lo, hi, sts)
		states[s] = sts
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("scan: %w", err)
	}
	// Deterministic in-order pairwise tree merge: state i absorbs state
	// i+stride, doubling the stride until shard 0 holds the total. The
	// merge order is a pure function of the shard count, so the fold is
	// identical no matter how the shards were scheduled.
	for stride := 1; stride < shards; stride *= 2 {
		for i := 0; i+stride < shards; i += 2 * stride {
			for k := range kernels {
				states[i][k].Merge(states[i+stride][k])
			}
		}
	}
	return states[0], nil
}

// processShard feeds the shard's rows to every state, one block at a time
// so the block's columns stay cache-hot across kernels.
func processShard[V any](v V, lo, hi int, sts []State[V]) {
	for blo := lo; blo < hi; blo += BlockRows {
		bhi := min(blo+BlockRows, hi)
		for _, st := range sts {
			st.ProcessBlock(v, blo, bhi)
		}
	}
}
