package scan

// JobView is the struct-of-arrays mirror of the hot job columns. All column
// slices have length N and are aligned with the owning dataset's Jobs slice
// (row i describes Jobs[i]). Views are built once — lazily from the AoS
// records, or straight from mirapack column decode — and treated as
// immutable thereafter.
type JobView struct {
	N int

	// ID is the job id (JobID in the log).
	ID []int64
	// SubmitUnix, StartUnix and EndUnix are Unix seconds; the corpus is
	// second-resolution, so these carry the full timestamps.
	SubmitUnix []int64
	StartUnix  []int64
	EndUnix    []int64
	// DurSec is EndUnix-StartUnix, the execution length in seconds.
	DurSec []int64
	// Nodes is the allocated node count.
	Nodes []int32
	// CoreSec is Nodes × 16 cores × DurSec: exact integer core-seconds, the
	// order-insensitive form of joblog.Job.CoreHours (divide by 3600).
	CoreSec []int64
	// Exit is the raw exit status; 0 means success.
	Exit []int32
	// Family is the dense joblog family code (joblog.FamilyCode); 0 is
	// success, 1.. follow joblog.FailureFamilies order.
	Family []uint8
	// UserID and ProjectID index the Users and Projects dictionaries.
	// Dictionaries are in first-appearance order over the job slice, which
	// matches the mirapack dictionary order by construction.
	UserID    []int32
	ProjectID []int32
	Users     []string
	Projects  []string
}

// EventView is the struct-of-arrays mirror of the hot RAS event columns,
// aligned with the owning dataset's Events slice.
type EventView struct {
	N int

	// TimeUnix is the event time in Unix seconds.
	TimeUnix []int64
	// Sev is the raw raslog.Severity value.
	Sev []uint8
	// CatID and CompID index the Cats and Comps dictionaries
	// (first-appearance order over the event slice).
	CatID  []int32
	CompID []int32
	Cats   []string
	Comps  []string
	// MidplaneID is the machine-wide linear midplane index (0..95) of the
	// event location's midplane ancestor, or -1 when the location is
	// coarser than a midplane. RackID is the rack index (0..47), or -1 for
	// system-level locations.
	MidplaneID []int32
	RackID     []int32
}
