package scan

import (
	"reflect"
	"testing"
)

// rowsView is a trivial column view for engine tests: the value of row i is
// just i.
type rowsView struct{ n int }

// traceKernel records every (lo, hi) block and every row it visits, in
// order. Merge concatenates — so the final trace is sensitive to both the
// shard plan and the merge order, and pinning it pins the engine's
// determinism contract.
type traceKernel struct{}

type traceState struct {
	rows   []int
	blocks [][2]int
	merges int
}

func (traceKernel) Name() string              { return "trace" }
func (traceKernel) NewState() State[rowsView] { return &traceState{} }

func (s *traceState) ProcessBlock(v rowsView, lo, hi int) {
	s.blocks = append(s.blocks, [2]int{lo, hi})
	for i := lo; i < hi; i++ {
		s.rows = append(s.rows, i)
	}
}

func (s *traceState) Merge(other State[rowsView]) {
	o := other.(*traceState)
	s.rows = append(s.rows, o.rows...)
	s.blocks = append(s.blocks, o.blocks...)
	s.merges += o.merges + 1
}

// sumKernel is a second kernel so multi-kernel runs are exercised.
type sumKernel struct{}

type sumState struct{ total int64 }

func (sumKernel) Name() string              { return "sum" }
func (sumKernel) NewState() State[rowsView] { return &sumState{} }

func (s *sumState) ProcessBlock(v rowsView, lo, hi int) {
	for i := lo; i < hi; i++ {
		s.total += int64(i)
	}
}

func (s *sumState) Merge(other State[rowsView]) { s.total += other.(*sumState).total }

func runTrace(t *testing.T, n, workers int) (*traceState, *sumState) {
	t.Helper()
	states, err := Run(rowsView{n}, n, []Kernel[rowsView]{traceKernel{}, sumKernel{}}, workers)
	if err != nil {
		t.Fatal(err)
	}
	return states[0].(*traceState), states[1].(*sumState)
}

// TestRunVisitsEveryRowInOrder pins the core determinism property: after
// the in-order merge, the trace of visited rows is exactly 0..n-1 in order,
// regardless of worker count, for row counts around the shard and block
// boundaries.
func TestRunVisitsEveryRowInOrder(t *testing.T) {
	sizes := []int{0, 1, BlockRows - 1, BlockRows, BlockRows + 1,
		ShardRows - 1, ShardRows, ShardRows + 1, 3 * ShardRows, 5*ShardRows + 7}
	for _, n := range sizes {
		serial, serialSum := runTrace(t, n, 1)
		if len(serial.rows) != n {
			t.Fatalf("n=%d: serial trace visited %d rows", n, len(serial.rows))
		}
		for i, r := range serial.rows {
			if r != i {
				t.Fatalf("n=%d: serial trace out of order at %d: got row %d", n, i, r)
			}
		}
		for _, workers := range []int{2, 3, 4, 16} {
			par, parSum := runTrace(t, n, workers)
			if !reflect.DeepEqual(par.rows, serial.rows) {
				t.Fatalf("n=%d workers=%d: row trace differs from serial", n, workers)
			}
			if !reflect.DeepEqual(par.blocks, serial.blocks) {
				t.Fatalf("n=%d workers=%d: block plan differs from serial", n, workers)
			}
			if parSum.total != serialSum.total {
				t.Fatalf("n=%d workers=%d: sum %d != serial %d", n, workers, parSum.total, serialSum.total)
			}
		}
	}
}

// TestRunBlockPlan pins the fixed shard/block decomposition: blocks never
// span a shard boundary, never exceed BlockRows, and tile [0, n) exactly.
func TestRunBlockPlan(t *testing.T) {
	n := 2*ShardRows + ShardRows/2 + 13
	tr, _ := runTrace(t, n, 4)
	next := 0
	for _, b := range tr.blocks {
		lo, hi := b[0], b[1]
		if lo != next {
			t.Fatalf("block starts at %d, want %d", lo, next)
		}
		if hi <= lo || hi-lo > BlockRows {
			t.Fatalf("block [%d,%d) has bad size", lo, hi)
		}
		if lo/ShardRows != (hi-1)/ShardRows {
			t.Fatalf("block [%d,%d) spans a shard boundary", lo, hi)
		}
		next = hi
	}
	if next != n {
		t.Fatalf("blocks cover [0,%d), want [0,%d)", next, n)
	}
}

// TestRunMergeTree checks every shard state is merged exactly once into the
// root (shards-1 merges total), at any worker count.
func TestRunMergeTree(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 5, 8, 13} {
		n := shards * ShardRows
		tr, _ := runTrace(t, n, 4)
		if tr.merges != shards-1 {
			t.Fatalf("shards=%d: %d merges, want %d", shards, tr.merges, shards-1)
		}
	}
}

func TestRunEmptyAndErrors(t *testing.T) {
	states, err := Run(rowsView{0}, 0, []Kernel[rowsView]{sumKernel{}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := states[0].(*sumState).total; got != 0 {
		t.Fatalf("empty run summed %d", got)
	}
	if _, err := Run(rowsView{0}, -1, []Kernel[rowsView]{sumKernel{}}, 1); err == nil {
		t.Fatal("negative row count accepted")
	}
	if states, err := Run(rowsView{5}, 5, nil, 1); err != nil || len(states) != 0 {
		t.Fatalf("kernel-less run: states=%v err=%v", states, err)
	}
}
