package scan

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitmap"
)

// runWhereTrace runs the trace+sum kernel pair through RunWhere.
func runWhereTrace(t *testing.T, n int, sel *bitmap.Bitmap, workers int) (*traceState, *sumState) {
	t.Helper()
	states, err := RunWhere(rowsView{n}, n, sel, []Kernel[rowsView]{traceKernel{}, sumKernel{}}, workers)
	if err != nil {
		t.Fatalf("RunWhere(n=%d, workers=%d): %v", n, workers, err)
	}
	return states[0].(*traceState), states[1].(*sumState)
}

// TestRunWhereVisitsExactlySelection checks that every selected row is
// visited exactly once, in ascending order, for several selection shapes
// and worker counts.
func TestRunWhereVisitsExactlySelection(t *testing.T) {
	const n = 3*ShardRows + 777
	rng := rand.New(rand.NewSource(5))
	shapes := map[string]func() *bitmap.Bitmap{
		"empty": func() *bitmap.Bitmap { return bitmap.New() },
		"full": func() *bitmap.Bitmap {
			b := bitmap.New()
			b.AddRange(0, n)
			return b
		},
		"sparse": func() *bitmap.Bitmap {
			b := bitmap.New()
			for i := 0; i < n; i += 97 {
				b.Add(uint32(i))
			}
			return b
		},
		"random": func() *bitmap.Bitmap {
			b := bitmap.New()
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					b.Add(uint32(i))
				}
			}
			return b
		},
		"oneblock": func() *bitmap.Bitmap {
			b := bitmap.New()
			b.AddRange(2*BlockRows, 3*BlockRows)
			return b
		},
		"tail": func() *bitmap.Bitmap {
			b := bitmap.New()
			b.AddRange(n-5, n+100) // past-the-end bits must be clipped by block bounds
			return b
		},
	}
	for name, mk := range shapes {
		sel := mk()
		var want []int
		var wantSum int64
		sel.Iterate(func(x uint32) bool {
			if int(x) < n {
				want = append(want, int(x))
				wantSum += int64(x)
			}
			return true
		})
		var ref *traceState
		for _, workers := range []int{1, 4, 8} {
			tr, sum := runWhereTrace(t, n, sel, workers)
			if sum.total != wantSum {
				t.Errorf("%s workers=%d: sum = %d, want %d", name, workers, sum.total, wantSum)
			}
			if len(tr.rows) != len(want) || (len(want) > 0 && !reflect.DeepEqual(tr.rows, want)) {
				t.Errorf("%s workers=%d: visited %d rows, want %d (ascending selection order)",
					name, workers, len(tr.rows), len(want))
			}
			if ref == nil {
				ref = tr
			} else if !reflect.DeepEqual(tr.blocks, ref.blocks) {
				t.Errorf("%s workers=%d: block trace differs from workers=1 — determinism broken", name, workers)
			}
		}
	}
}

// TestRunWhereFullSelectionMatchesRun pins the fast-path contract: a fully
// selected scan issues exactly the block calls of the unmasked engine.
func TestRunWhereFullSelectionMatchesRun(t *testing.T) {
	for _, n := range []int{0, 1, BlockRows, ShardRows + 3, 2*ShardRows + BlockRows + 11} {
		full := bitmap.New()
		full.AddRange(0, uint32(n))
		states, err := Run(rowsView{n}, n, []Kernel[rowsView]{traceKernel{}}, 4)
		if err != nil {
			t.Fatal(err)
		}
		want := states[0].(*traceState).blocks
		tr, _ := runWhereTrace(t, n, full, 4)
		if !reflect.DeepEqual(tr.blocks, want) {
			t.Errorf("n=%d: full-selection blocks %v, want unmasked blocks %v", n, tr.blocks, want)
		}
	}
}

// TestRunWhereNilSelection checks nil degrades to a plain Run.
func TestRunWhereNilSelection(t *testing.T) {
	const n = ShardRows + 10
	states, err := RunWhere(rowsView{n}, n, nil, []Kernel[rowsView]{sumKernel{}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(n) * int64(n-1) / 2
	if got := states[0].(*sumState).total; got != want {
		t.Errorf("nil selection sum = %d, want %d", got, want)
	}
}
