package scan

import (
	"context"
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/par"
)

// RunWhere is Run restricted to the rows set in sel: every kernel sees
// exactly the selected rows, in ascending order, as ProcessBlock calls
// over the maximal selected runs of each block. A nil sel degenerates to
// Run.
//
// The shard plan stays a pure function of the total row count n — NOT of
// the selection — so the partial-state layout and the merge tree are the
// same as an unmasked scan's, and results are bit-identical at any worker
// count. Blocks with no selected rows are skipped without touching the
// view's columns; a fully selected block issues the same single
// ProcessBlock(v, blockLo, blockHi) call the unmasked engine would, so
// pushdown costs nothing where the predicate is dense (DESIGN.md §14).
func RunWhere[V any](v V, n int, sel *bitmap.Bitmap, kernels []Kernel[V], workers int) ([]State[V], error) {
	if sel == nil {
		return Run(v, n, kernels, workers)
	}
	if n < 0 {
		return nil, fmt.Errorf("scan: negative row count %d", n)
	}
	newStates := func() []State[V] {
		sts := make([]State[V], len(kernels))
		for i, k := range kernels {
			sts[i] = k.NewState()
		}
		return sts
	}
	shards := (n + ShardRows - 1) / ShardRows
	if shards <= 1 {
		sts := newStates()
		processShardWhere(v, 0, n, sel, make([]bitmap.Run, 0, BlockRows/2), sts)
		return sts, nil
	}
	states := make([][]State[V], shards)
	err := par.ForEach(context.Background(), shards, workers, func(s int) error {
		lo := s * ShardRows
		hi := min(lo+ShardRows, n)
		sts := newStates()
		// The run buffer is per-shard-task; par.ForEach hands each worker
		// disjoint shards, so no sharing. Worst case a 2048-row block
		// decomposes into 1024 singleton runs.
		processShardWhere(v, lo, hi, sel, make([]bitmap.Run, 0, BlockRows/2), sts)
		states[s] = sts
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("scan: %w", err)
	}
	for stride := 1; stride < shards; stride *= 2 {
		for i := 0; i+stride < shards; i += 2 * stride {
			for k := range kernels {
				states[i][k].Merge(states[i+stride][k])
			}
		}
	}
	return states[0], nil
}

// processShardWhere feeds each block's selected runs to every state. The
// block-skip test and the run decomposition touch only the selection
// bitmap, never the view's columns.
//
//mira:hotpath
func processShardWhere[V any](v V, lo, hi int, sel *bitmap.Bitmap, runs []bitmap.Run, sts []State[V]) {
	for blo := lo; blo < hi; blo += BlockRows {
		bhi := min(blo+BlockRows, hi)
		runs = sel.AppendBlockRuns(runs[:0], blo, bhi)
		if len(runs) == 0 {
			continue
		}
		for _, st := range sts {
			for _, r := range runs {
				st.ProcessBlock(v, int(r.Lo), int(r.Hi))
			}
		}
	}
}
