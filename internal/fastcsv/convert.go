package fastcsv

import "strconv"

// The numeric parsers delegate to strconv via a string conversion. The
// conversion does not escape into the callee, so for the short numeric
// fields of the log formats the compiler keeps it on the stack — no
// allocation — while error text and accepted syntax stay exactly those of
// the strconv functions the codecs used before.

// Int64 parses a base-10 int64 field.
//
//mira:hotpath
func Int64(b []byte) (int64, error) {
	//lint:ignore hotalloc the conversion does not escape into strconv, so it stays on the stack
	return strconv.ParseInt(string(b), 10, 64)
}

// Int parses a base-10 int field.
//
//mira:hotpath
func Int(b []byte) (int, error) {
	//lint:ignore hotalloc the conversion does not escape into strconv, so it stays on the stack
	return strconv.Atoi(string(b))
}

// Float parses a float64 field.
//
//mira:hotpath
func Float(b []byte) (float64, error) {
	//lint:ignore hotalloc the conversion does not escape into strconv, so it stays on the stack
	return strconv.ParseFloat(string(b), 64)
}

// Interner deduplicates the string materialization of byte-slice fields.
// The categorical columns of the Mira logs (message IDs, components,
// categories, locations, users, projects, queues) repeat a tiny vocabulary
// across millions of rows; interning makes the steady-state cost of such a
// column one map probe instead of one heap string per row. The map probe
// itself is allocation-free: Go compiles the m[string(b)] lookup without
// materializing the key.
//
// An Interner is not safe for concurrent use; each Reader/Scanner owns one.
type Interner struct {
	m map[string]string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string, 64)}
}

// Intern returns a string equal to b, reusing a previously returned
// instance when one exists.
//
//mira:hotpath
func (in *Interner) Intern(b []byte) string {
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	//lint:ignore hotalloc one materialization per distinct vocabulary entry, amortized to zero by the interning map
	s := string(b)
	in.m[s] = s
	return s
}
