package fastcsv

import (
	"bytes"
	"encoding/csv"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// readAll decodes every record as [][]string for comparison.
func readAll(t *testing.T, data string) ([][]string, error) {
	t.Helper()
	r := NewReader(strings.NewReader(data))
	var out [][]string
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		row := make([]string, len(rec))
		for i, f := range rec {
			row[i] = string(f)
		}
		out = append(out, row)
	}
}

func TestReadBasic(t *testing.T) {
	cases := []struct {
		in   string
		want [][]string
	}{
		{"a,b,c\n", [][]string{{"a", "b", "c"}}},
		{"a,b,c", [][]string{{"a", "b", "c"}}},
		{"a,b,c\r\n", [][]string{{"a", "b", "c"}}},
		{"a,,c\n,,\n", [][]string{{"a", "", "c"}, {"", "", ""}}},
		{"a\n\nb\n", [][]string{{"a"}, {"b"}}}, // blank line skipped
		{`"a","b,b","c""c"` + "\n", [][]string{{"a", "b,b", `c"c`}}},
		{"\"multi\nline\",x\n", [][]string{{"multi\nline", "x"}}},
		{"\"multi\r\nline\",x\n", [][]string{{"multi\nline", "x"}}},
		{`"",x` + "\n", [][]string{{"", "x"}}},
		{"a,\"b\"\nc,d\n", [][]string{{"a", "b"}, {"c", "d"}}},
		{"a,b,\n", [][]string{{"a", "b", ""}}},
		{" lead,x\n", [][]string{{" lead", "x"}}},
	}
	for _, c := range cases {
		got, err := readAll(t, c.in)
		if err != nil {
			t.Errorf("%q: unexpected error %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%q: got %q, want %q", c.in, got, c.want)
		}
	}
}

func TestReadMalformed(t *testing.T) {
	cases := []struct {
		in   string
		want error
	}{
		{`a,b"c` + "\n", ErrBareQuote},       // bare quote in unquoted field
		{`"abc` + "\n", ErrQuote},            // unterminated quote at EOF
		{`"abc",` + "\n" + `"def`, ErrQuote}, // truncated final row
		{`"abc"def,x` + "\n", ErrQuote},      // text after closing quote
	}
	for _, c := range cases {
		_, err := readAll(t, c.in)
		if !errors.Is(err, c.want) {
			t.Errorf("%q: got error %v, want %v", c.in, err, c.want)
		}
		var pe *ParseError
		if !errors.As(err, &pe) || pe.Line < 1 {
			t.Errorf("%q: error %v carries no line number", c.in, err)
		}
	}
}

// TestReaderMatchesEncodingCSV feeds the same well-formed inputs to both
// readers and requires identical records.
func TestReaderMatchesEncodingCSV(t *testing.T) {
	inputs := []string{
		"a,b,c\nd,e,f\n",
		`"x,y",z` + "\n" + `"q""q",r` + "\n",
		"\"a\nb\",c\n\nd,e\n",
		"one\ntwo\nthree\n",
		strings.Repeat("field,"+strings.Repeat("x", 100)+"\n", 50),
	}
	for _, in := range inputs {
		cr := csv.NewReader(strings.NewReader(in))
		cr.FieldsPerRecord = -1
		want, err := cr.ReadAll()
		if err != nil {
			t.Fatalf("encoding/csv rejected %q: %v", in, err)
		}
		got, err := readAll(t, in)
		if err != nil {
			t.Fatalf("fastcsv rejected %q: %v", in, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: %d records vs %d", in, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("%q record %d: %q vs %q", in, i, got[i], want[i])
			}
		}
	}
}

// TestWriterMatchesEncodingCSV requires byte-identical output for fields
// exercising every quoting rule, plus random fuzz rows.
func TestWriterMatchesEncodingCSV(t *testing.T) {
	rows := [][]string{
		{"plain", "", "with,comma", `with"quote`, "with\nnewline"},
		{" leadspace", "\ttab", "\r", "a\r\nb", `\.`},
		{"ümlaut", "トウキョウ", `""`, ",", "end"},
	}
	rng := rand.New(rand.NewSource(7))
	alphabet := []rune(`abc,"` + "\n\r \t" + `xyz0123456789`)
	for i := 0; i < 200; i++ {
		row := make([]string, 1+rng.Intn(6))
		for j := range row {
			var sb strings.Builder
			for k := rng.Intn(12); k > 0; k-- {
				sb.WriteRune(alphabet[rng.Intn(len(alphabet))])
			}
			row[j] = sb.String()
		}
		rows = append(rows, row)
	}

	var want bytes.Buffer
	cw := csv.NewWriter(&want)
	if err := cw.WriteAll(rows); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	w := NewWriter(&got)
	for _, row := range rows {
		for _, f := range row {
			w.String(f)
		}
		w.EndRecord()
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("writer output differs from encoding/csv:\n got: %q\nwant: %q",
			got.String(), want.String())
	}
}

func TestWriterNumericFields(t *testing.T) {
	var got bytes.Buffer
	w := NewWriter(&got)
	w.Int64(-9007199254740993)
	w.Int(42)
	w.Float(1234.5678, 3)
	w.String("x")
	w.EndRecord()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	const want = "-9007199254740993,42,1234.568,x\n"
	if got.String() != want {
		t.Errorf("got %q, want %q", got.String(), want)
	}
}

// TestRoundTrip pushes adversarial rows through Writer then Reader.
func TestRoundTrip(t *testing.T) {
	rows := [][]string{
		{"a", "b,c", `d"e`, "f\ng", ""},
		{"", "", ""},
		{strings.Repeat("long", 40000)}, // > bufio buffer, forces lineBuf path
		{" space", "\rcarriage", "plain"},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, row := range rows {
		for _, f := range row {
			w.String(f)
		}
		w.EndRecord()
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := readAll(t, buf.String())
	if err != nil {
		t.Fatal(err)
	}
	// The all-empty row is written as ",," — not a blank line — so every
	// row survives (encoding/csv behaves identically).
	want := rows
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %q\nwant %q", got, want)
	}
}

func TestTruncatedRow(t *testing.T) {
	// A record cut mid-quoted-field must error, not silently truncate.
	data := "h1,h2\nv1,\"v2 unterminated"
	recs, err := readAll(t, data)
	if err == nil {
		t.Fatalf("truncated row accepted: %q", recs)
	}
}

func TestNumericHelpers(t *testing.T) {
	if v, err := Int64([]byte("-12345678901")); err != nil || v != -12345678901 {
		t.Errorf("Int64 = %d, %v", v, err)
	}
	if v, err := Int([]byte("99")); err != nil || v != 99 {
		t.Errorf("Int = %d, %v", v, err)
	}
	if v, err := Float([]byte("3.250")); err != nil || v != 3.25 {
		t.Errorf("Float = %v, %v", v, err)
	}
	for _, bad := range []string{"", "x", "1.2.3", "--4"} {
		if _, err := Int64([]byte(bad)); err == nil {
			t.Errorf("Int64(%q) accepted", bad)
		}
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.Intern([]byte("R00-M0"))
	b := in.Intern([]byte("R00-M0"))
	if a != b {
		t.Error("values differ")
	}
	// Same backing storage, not just equal content.
	if &[]byte(a)[0] != &[]byte(b)[0] {
		t.Error("intern did not deduplicate storage")
	}
}

func TestReaderReuseSafety(t *testing.T) {
	// Fields from a previous Read must not alias the next record's data in
	// a way that changes already-copied strings.
	r := NewReader(strings.NewReader("first,one\nsecond,two\n"))
	rec, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	keep := string(rec[0])
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if keep != "first" {
		t.Errorf("copied string mutated: %q", keep)
	}
}
