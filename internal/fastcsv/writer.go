package fastcsv

import (
	"io"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// flushThreshold is the buffered-bytes level past which EndRecord writes
// the buffer to the underlying io.Writer.
const flushThreshold = 32 << 10

// Writer builds CSV rows field by field into one reused buffer using the
// strconv.Append* family, so encoding a row performs no allocations. Its
// output is byte-identical to encoding/csv with default settings (',',
// '\n' line terminator, RFC-4180 quoting).
//
// Append fields with String/Bytes/Int/Int64/Float, close each row with
// EndRecord, and finish with Flush. Write errors are sticky: they surface
// from Flush (and Err) and make further writes no-ops.
type Writer struct {
	w       io.Writer
	buf     []byte
	err     error
	started bool // a field was written to the current record
}

// NewWriter returns a Writer encoding to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, 0, flushThreshold+1024)}
}

// sep appends the comma separating fields within a record.
//
//mira:hotpath
func (w *Writer) sep() {
	if w.started {
		w.buf = append(w.buf, ',')
	}
	w.started = true
}

// String appends one field, quoting it exactly as encoding/csv would.
//
//mira:hotpath
func (w *Writer) String(s string) {
	w.sep()
	if !needsQuotes(s) {
		w.buf = append(w.buf, s...)
		return
	}
	w.buf = append(w.buf, '"')
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			w.buf = append(w.buf, s...)
			break
		}
		w.buf = append(w.buf, s[:i+1]...)
		w.buf = append(w.buf, '"')
		s = s[i+1:]
	}
	w.buf = append(w.buf, '"')
}

// Bytes appends one field given as a byte slice, with the same quoting.
//
//mira:hotpath
func (w *Writer) Bytes(b []byte) {
	// The compiler does not allocate for this conversion unless the field
	// needs escaping (String keeps sub-slicing the argument).
	//lint:ignore hotalloc non-escaping conversion: String only sub-slices its argument, so no copy is made
	w.String(string(b))
}

// Int appends an integer field.
//
//mira:hotpath
func (w *Writer) Int(v int) {
	w.sep()
	w.buf = strconv.AppendInt(w.buf, int64(v), 10)
}

// Int64 appends a 64-bit integer field.
//
//mira:hotpath
func (w *Writer) Int64(v int64) {
	w.sep()
	w.buf = strconv.AppendInt(w.buf, v, 10)
}

// Float appends a float field in strconv's 'f' format with prec digits.
//
//mira:hotpath
func (w *Writer) Float(v float64, prec int) {
	w.sep()
	w.buf = strconv.AppendFloat(w.buf, v, 'f', prec, 64)
}

// EndRecord terminates the current row and flushes the buffer to the
// underlying writer once it exceeds the flush threshold.
//
//mira:hotpath
func (w *Writer) EndRecord() {
	w.buf = append(w.buf, '\n')
	w.started = false
	if len(w.buf) >= flushThreshold {
		w.flush()
	}
}

func (w *Writer) flush() {
	if w.err == nil && len(w.buf) > 0 {
		_, w.err = w.w.Write(w.buf)
	}
	w.buf = w.buf[:0]
}

// Flush writes any buffered rows and returns the first write error.
func (w *Writer) Flush() error {
	w.flush()
	return w.err
}

// Err returns the first write error without flushing.
func (w *Writer) Err() error { return w.err }

// needsQuotes reports whether encoding/csv (Comma == ',') would quote the
// field: it contains a comma, quote or line break, starts with a space, or
// is the PostgreSQL end-of-data marker `\.`.
func needsQuotes(s string) bool {
	if s == "" {
		return false
	}
	if s == `\.` {
		return true
	}
	if strings.ContainsAny(s, ",\"\r\n") {
		return true
	}
	r, _ := utf8.DecodeRuneInString(s)
	return unicode.IsSpace(r)
}
