package fastcsv

// Allocation pins for the //mira:hotpath functions of this package.
// The hotalloc analyzer (internal/lint) keeps allocating constructs out
// of these bodies statically; these tests pin the same property
// dynamically, so a regression fails even if it slips past the
// analyzer's construct list.

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

// TestWriterAllocFree pins the writer hot path — sep, String, Bytes,
// Int, Int64, Float, EndRecord — to zero steady-state allocations.
func TestWriterAllocFree(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	row := func() {
		w.String("plain field")
		w.String(`needs "quoting", badly`)
		w.Bytes([]byte("byte field"))
		w.Int(12345)
		w.Int64(-9876543210)
		w.Float(3.14159, 6)
		w.EndRecord()
	}
	// Warm-up grows the destination buffer once.
	for i := 0; i < 4; i++ {
		row()
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, func() {
		buf.Reset()
		row()
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("writer hot path allocates %v per row, want 0", n)
	}
}

// TestConvertAllocFree pins the numeric parsers and the warmed interner
// to zero allocations per field.
func TestConvertAllocFree(t *testing.T) {
	in := NewInterner()
	vocab := [][]byte{[]byte("R00-M1-N8"), []byte("DDR"), []byte("FATAL")}
	for _, v := range vocab {
		in.Intern(v) // warm the vocabulary
	}
	num := []byte("-1234567")
	fnum := []byte("6.125")
	var isink int64
	var fsink float64
	var ssink string
	if n := testing.AllocsPerRun(100, func() {
		v64, err := Int64(num)
		if err != nil {
			t.Fatal(err)
		}
		vi, err := Int(num)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Float(fnum)
		if err != nil {
			t.Fatal(err)
		}
		isink += v64 + int64(vi)
		fsink += f
		ssink = in.Intern(vocab[0])
	}); n != 0 {
		t.Errorf("field converters allocate %v per field set, want 0", n)
	}
	_, _, _ = isink, fsink, ssink
}

// TestReaderAmortizedAllocs pins the reader hot path — readLine and
// Read — to setup-only allocations: a full multi-thousand-row pass may
// allocate the reader, its line buffer, and the field slice, but
// nothing per row.
func TestReaderAmortizedAllocs(t *testing.T) {
	var sb strings.Builder
	const rows = 2000
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,user%d,a RAS message body with some text,%d.5\n", i, i%7, i*3)
	}
	data := sb.String()
	src := strings.NewReader(data)
	allocs := testing.AllocsPerRun(5, func() {
		src.Reset(data)
		r := NewReader(src)
		for {
			_, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	const setupBudget = 16
	if allocs > setupBudget {
		t.Errorf("full %d-row pass allocates %v, want setup-only (≤ %d)", rows, allocs, setupBudget)
	}
}
