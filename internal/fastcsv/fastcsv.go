// Package fastcsv is a minimal, allocation-free CSV codec for the four
// Mira log formats. The Reader yields records as reused byte-slice fields
// (no per-record []string or field-string allocations); the Writer builds
// rows with strconv.Append* into one reused buffer. Both follow RFC-4180
// quoting exactly as the standard library does, so the Writer's output is
// byte-identical to encoding/csv with default settings and the Reader
// accepts everything encoding/csv (strict mode) accepts.
//
// The package exists because the log codecs are the hottest I/O paths of
// the repository: a 2,001-day RAS log holds tens of millions of rows, and
// encoding/csv allocates one string per field per row. Decoding numeric
// fields straight from byte slices and interning the (heavily repeated)
// categorical fields removes nearly all of that garbage.
package fastcsv

import (
	"errors"
	"fmt"
)

// Parse errors. They mirror the strict-mode behavior of encoding/csv:
// quotes may not appear bare in unquoted fields, quoted fields must be
// closed, and a closing quote must be followed by a separator.
var (
	// ErrBareQuote reports a '"' inside an unquoted field.
	ErrBareQuote = errors.New(`bare " in non-quoted field`)
	// ErrQuote reports an unterminated or misplaced quote in a quoted field.
	ErrQuote = errors.New(`extraneous or missing " in quoted field`)
)

// ParseError wraps a parse failure with its 1-based line number.
type ParseError struct {
	Line int
	Err  error
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("fastcsv: line %d: %v", e.Line, e.Err)
}

// Unwrap returns the underlying error.
func (e *ParseError) Unwrap() error { return e.Err }
