package fastcsv

import (
	"bufio"
	"bytes"
	"io"
)

// Reader reads CSV records as byte-slice fields.
//
// Read returns a [][]byte whose backing arrays are owned by the Reader and
// overwritten by the next Read — callers must copy any field they retain
// (converting to string, as the log codecs do for genuinely textual
// columns, copies implicitly). Records may differ in field count; callers
// enforce their own schema, as the log codecs always did.
type Reader struct {
	br *bufio.Reader

	// lineBuf accumulates a physical line when it exceeds the bufio buffer.
	lineBuf []byte
	// rec holds the unescaped bytes of every field of the current record,
	// back to back; bounds holds (start, end) offset pairs into rec. Field
	// views are materialized only after the record is complete, because
	// appending to rec may relocate it.
	rec    []byte
	bounds []int
	fields [][]byte

	line int // physical lines consumed (1-based, for errors)
}

// NewReader returns a Reader reading from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Line returns the number of physical lines consumed so far.
func (r *Reader) Line() int { return r.line }

// readLine returns the next physical line including its trailing newline
// (if present). The returned slice is only valid until the next call.
//
//mira:hotpath
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		r.lineBuf = append(r.lineBuf[:0], line...)
		for err == bufio.ErrBufferFull {
			line, err = r.br.ReadSlice('\n')
			r.lineBuf = append(r.lineBuf, line...)
		}
		line = r.lineBuf
	}
	if err == io.EOF && len(line) > 0 {
		err = nil // final line without a terminator
	}
	if err == nil {
		r.line++
	}
	return line, err
}

// trimEOL removes one trailing "\n" or "\r\n" from line.
func trimEOL(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
	}
	return line
}

// Read parses the next record. It returns io.EOF (and no record) at end of
// input. Blank lines are skipped, matching encoding/csv.
//
//mira:hotpath
func (r *Reader) Read() ([][]byte, error) {
	var line []byte
	for {
		var err error
		line, err = r.readLine()
		if err != nil {
			return nil, err
		}
		if len(trimEOL(line)) > 0 {
			break
		}
	}
	r.rec = r.rec[:0]
	r.bounds = r.bounds[:0]
	startLine := r.line

	for {
		fieldStart := len(r.rec)
		if len(line) == 0 || line[0] != '"' { // unquoted field
			body := trimEOL(line)
			i := bytes.IndexByte(body, ',')
			if i < 0 {
				i = len(body)
			}
			field := body[:i]
			if bytes.IndexByte(field, '"') >= 0 {
				return nil, &ParseError{Line: startLine, Err: ErrBareQuote}
			}
			r.rec = append(r.rec, field...)
			r.bounds = append(r.bounds, fieldStart, len(r.rec))
			if i < len(body) { // consumed up to a comma: more fields follow
				line = body[i+1:]
				continue
			}
			break // end of record
		}

		// Quoted field: scan past the opening quote, unescaping "" pairs
		// and pulling in more physical lines while the quote stays open.
		line = line[1:]
		for {
			i := bytes.IndexByte(line, '"')
			if i < 0 {
				// Quote still open: the field spans a line break. Normalize
				// the terminator to '\n' as encoding/csv does.
				r.rec = append(r.rec, trimEOL(line)...)
				r.rec = append(r.rec, '\n')
				var err error
				line, err = r.readLine()
				if err == io.EOF {
					return nil, &ParseError{Line: startLine, Err: ErrQuote}
				}
				if err != nil {
					return nil, err
				}
				continue
			}
			r.rec = append(r.rec, line[:i]...)
			line = line[i+1:]
			if len(line) > 0 && line[0] == '"' { // escaped quote
				r.rec = append(r.rec, '"')
				line = line[1:]
				continue
			}
			break // closing quote
		}
		r.bounds = append(r.bounds, fieldStart, len(r.rec))
		rest := trimEOL(line)
		switch {
		case len(rest) > 0 && rest[0] == ',':
			line = rest[1:]
			continue
		case len(rest) == 0:
			// closing quote at end of record
		default:
			return nil, &ParseError{Line: r.line, Err: ErrQuote}
		}
		break
	}

	if cap(r.fields) < len(r.bounds)/2 {
		r.fields = make([][]byte, 0, len(r.bounds)/2)
	}
	r.fields = r.fields[:0]
	for i := 0; i < len(r.bounds); i += 2 {
		r.fields = append(r.fields, r.rec[r.bounds[i]:r.bounds[i+1]])
	}
	return r.fields, nil
}
