// Quickstart: generate a small synthetic Mira corpus, run the headline
// failure classification, and print the numbers the paper leads with.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Generate a 30-day corpus (use sim.DefaultConfig() for the full
	//    2001-day study; it takes ~30s).
	cfg := sim.SmallConfig()
	corpus, err := sim.Generate(cfg)
	if err != nil {
		return err
	}

	// 2. Index the four logs into a dataset.
	d, err := core.NewDataset(corpus.Jobs, corpus.Tasks, corpus.Events, corpus.IO)
	if err != nil {
		return err
	}

	// 3. Headline numbers: dataset summary + failure attribution.
	s := d.Summarize()
	fmt.Printf("corpus: %.0f days, %d jobs, %.2fM core-hours, %d RAS events\n",
		s.Days, s.Jobs, s.CoreHours/1e6, s.RASTotal)

	cls := d.ClassifyByExit()
	fmt.Printf("failures: %d of %d jobs (%.1f%%)\n",
		cls.Failed, cls.Total, 100*float64(cls.Failed)/float64(cls.Total))
	fmt.Printf("user-caused: %.1f%%  system-caused: %d jobs\n",
		100*cls.UserShare(), cls.SystemCause)

	// 4. System reliability from the job perspective: filtered MTTI.
	mtti, err := d.MTTI(core.DefaultFilterRule())
	if err != nil {
		return err
	}
	fmt.Printf("MTTI: %.2f days (%d interruptions from %d raw FATAL events)\n",
		mtti.MTTIDays, mtti.Interruptions, mtti.RawFatal)
	return nil
}
