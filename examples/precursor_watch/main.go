// Precursor watch: the operator-facing view of the WARN→FATAL lead-time
// analysis — how often warning bursts precede fatal incidents, what lead
// time a monitoring system would get, and why raw WARN alarms are too
// noisy to page on.
//
//	go run ./examples/precursor_watch
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "precursor_watch:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := sim.SmallConfig()
	cfg.Days = 180 // enough incidents for stable coverage numbers
	corpus, err := sim.Generate(cfg)
	if err != nil {
		return err
	}
	d, err := core.NewDataset(corpus.Jobs, corpus.Tasks, corpus.Events, corpus.IO)
	if err != nil {
		return err
	}

	t := &report.Table{
		Title:   "precursor watch: WARN bursts before FATAL incidents (180 days)",
		Columns: []string{"lookback", "coverage", "median lead", "alarms", "precision"},
	}
	for _, lookback := range []time.Duration{time.Hour, 3 * time.Hour, 6 * time.Hour, 12 * time.Hour} {
		opt := core.DefaultLeadTimeOptions()
		opt.Lookback = lookback
		res, err := d.LeadTime(core.DefaultFilterRule(), opt)
		if err != nil {
			return err
		}
		t.AddRow(lookback.String(),
			fmt.Sprintf("%.0f%%", 100*res.Coverage),
			fmt.Sprintf("%.1fh", res.MedianLeadH),
			res.WarnBursts,
			fmt.Sprintf("%.2f%%", 100*res.Precision))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println(`
Reading: most fatal incidents announce themselves with warnings hours in
advance (useful for checkpoint scheduling), but paging on every WARN burst
would drown operators — the precision column is why failure prediction
needs message-level models, not raw severity alarms.`)
	return nil
}
