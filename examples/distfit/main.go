// Distfit: fit the candidate distribution families to failed-job execution
// lengths per exit family and print the ranked model-selection table —
// the analysis behind the paper's "best fit depends on the exit code".
//
//	go run ./examples/distfit
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distfit:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := sim.SmallConfig()
	cfg.Days = 120 // a few thousand failures per family
	corpus, err := sim.Generate(cfg)
	if err != nil {
		return err
	}
	d, err := core.NewDataset(corpus.Jobs, corpus.Tasks, corpus.Events, corpus.IO)
	if err != nil {
		return err
	}

	fits, err := d.FitExecutionLengths(core.FitOptions{MinSamples: 100})
	if err != nil {
		return err
	}
	laws := sim.DurationLaws()
	for _, f := range fits {
		injected := "none (system interruptions)"
		if law, ok := laws[f.Family]; ok {
			injected = law.Name()
		}
		t := &report.Table{
			Title:   fmt.Sprintf("exit family %q (n=%d, injected law: %s)", f.Family, f.N, injected),
			Columns: []string{"rank", "family", "params", "KS", "AIC", "logL"},
		}
		for rank, r := range f.Results {
			if r.Err != nil {
				t.AddRow(rank+1, r.Family, "fit failed: "+r.Err.Error(), "-", "-", "-")
				continue
			}
			t.AddRow(rank+1, r.Family, dist.ParamString(r.Dist), r.KS, r.AIC, r.LogL)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
