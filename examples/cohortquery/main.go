// Cohort queries: the interactive questions an operator asks after the
// weekly triage — "show me just this user", "large jobs that failed",
// "what happened in that rack last month" — answered by compiling -where
// predicates to bitmap selections and pushing them into the fused scan
// engine (DESIGN.md §14), so no filtered copy of the corpus is ever built.
//
//	go run ./examples/cohortquery
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sel"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cohortquery:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := sim.SmallConfig()
	cfg.Days = 60
	corpus, err := sim.Generate(cfg)
	if err != nil {
		return err
	}
	d, err := core.NewDataset(corpus.Jobs, corpus.Tasks, corpus.Events, corpus.IO)
	if err != nil {
		return err
	}

	// Pick the corpus' heaviest user so the walkthrough always has data.
	whole, err := d.FusedScan(0)
	if err != nil {
		return err
	}
	heaviest := whole.UserGroups[0].Key
	start, _ := d.Span()
	month := start.AddDate(0, 1, 0).Format("2006-01-02")

	queries := []string{
		// One user's whole history.
		fmt.Sprintf("user == %s", heaviest),
		// Large failed jobs, any user: dictionary + numeric columns compose.
		"exit != success and nodes >= 2048",
		// A calendar window over jobs AND events: top-level conjuncts split
		// into a job-side and an event-side selection automatically.
		fmt.Sprintf("submit < %s and time < %s and sev == FATAL", month, month),
	}
	for _, q := range queries {
		expr, err := sel.Parse(q)
		if err != nil {
			return err
		}
		p, err := d.FusedScanWhere(expr, 0)
		if err != nil {
			return err
		}
		s := p.Summary
		fmt.Printf("where %s\n", expr) // canonical form, also the cache key
		fmt.Printf("  %d jobs (%d failed) · %.0f core-h · %d users · %d FATAL events over %.1f days\n",
			s.Jobs, s.FailedJobs, s.CoreHours, s.Users, s.RASFatal, s.Days)
	}

	// The profile equals filter-then-scan bit for bit; prove it for the
	// second query.
	expr, _ := sel.Parse(queries[1])
	md, err := d.MaterializeWhere(expr)
	if err != nil {
		return err
	}
	ref, err := md.FusedScan(0)
	if err != nil {
		return err
	}
	got, err := d.FusedScanWhere(expr, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\npushdown == materialize-then-scan: %v\n", got.Summary == ref.Summary)
	return nil
}
