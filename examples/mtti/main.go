// MTTI pipeline: shows why raw FATAL counts mislead and how
// similarity-based filtering recovers the true interruption rate —
// sweeping the filtering window and comparing similarity rules.
//
//	go run ./examples/mtti
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mtti:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := sim.SmallConfig()
	cfg.Days = 120 // enough interruptions for stable statistics
	corpus, err := sim.Generate(cfg)
	if err != nil {
		return err
	}
	d, err := core.NewDataset(corpus.Jobs, corpus.Tasks, corpus.Events, corpus.IO)
	if err != nil {
		return err
	}

	// The naive view: every FATAL event is "a failure".
	res, err := d.MTTI(core.DefaultFilterRule())
	if err != nil {
		return err
	}
	fmt.Printf("raw FATAL events: %d  -> naive MTBF %.3f days\n", res.RawFatal, res.MTBFRawDays)
	fmt.Printf("filtered interruptions: %d -> MTTI %.2f days\n", res.Interruptions, res.MTTIDays)
	fmt.Printf("generator injected %d job-killing incidents (truth)\n\n", corpus.Truth.KillingIncidents)

	// Window sweep under three similarity rules.
	windows := []time.Duration{
		30 * time.Second, 2 * time.Minute, 5 * time.Minute,
		20 * time.Minute, time.Hour, 6 * time.Hour,
	}
	rules := []struct {
		name string
		rule core.FilterRule
	}{
		{"temporal only", core.FilterRule{Window: time.Minute, Spatial: machine.LevelSystem}},
		{"+ spatial (midplane)", core.FilterRule{Window: time.Minute, Spatial: machine.LevelMidplane}},
		{"+ message id", core.FilterRule{Window: time.Minute, Spatial: machine.LevelMidplane, SameMessage: true}},
	}
	fmt.Printf("%-22s", "window")
	for _, r := range rules {
		fmt.Printf("%22s", r.name)
	}
	fmt.Println()
	for _, w := range windows {
		fmt.Printf("%-22s", w)
		for _, r := range rules {
			sweep, err := core.FilterSweep(d.Events, r.rule, []time.Duration{w})
			if err != nil {
				return err
			}
			fmt.Printf("%22d", sweep[0].Incidents)
		}
		fmt.Println()
	}

	// Where does the curve flatten? That window is the filtering choice.
	sweep, err := core.FilterSweep(d.Events, core.DefaultFilterRule(), windows)
	if err != nil {
		return err
	}
	if knee, ok := core.KneeWindow(sweep, 0.05); ok {
		fmt.Printf("\nknee of the default-rule curve: %v\n", knee)
	}
	if res.BestFit.Dist != nil {
		fmt.Printf("interruption intervals best fit: %s (KS %.3f)\n",
			res.BestFit.Family, res.BestFit.KS)
	}
	return nil
}
