// Failure triage: the report an HPC facility operator would run weekly —
// who is failing, how much compute is burned by failures, and which exit
// families dominate per user.
//
//	go run ./examples/failure_triage
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/joblog"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failure_triage:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := sim.SmallConfig()
	cfg.Days = 60
	corpus, err := sim.Generate(cfg)
	if err != nil {
		return err
	}
	d, err := core.NewDataset(corpus.Jobs, corpus.Tasks, corpus.Events, corpus.IO)
	if err != nil {
		return err
	}
	cls := d.ClassifyByExit()

	// Triage table: the ten most-failing users with their wasted core-hours
	// and dominant exit family.
	users := d.Aggregate(core.ByUser, cls)
	t := &report.Table{
		Title:   "failure triage: top-10 failing users (60 days)",
		Columns: []string{"user", "jobs", "failed", "fail rate", "wasted core-h", "dominant failure"},
	}
	for _, g := range core.TopFailing(users, 10) {
		wasted, dominant := userFailureProfile(d, cls, g.Key)
		t.AddRow(g.Key, g.Jobs, g.Failed, g.FailRate, wasted, dominant)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	// Association strength: is failing behaviour a property of the user?
	conc, err := d.Concentration(core.ByUser, cls)
	if err != nil {
		return err
	}
	fmt.Printf("\nCramér's V(user, outcome) = %.3f — failure behaviour is user-specific\n", conc.CramersV)
	fmt.Printf("top-10 users own %.1f%% of all failures\n", 100*conc.Top10FailShare)
	return nil
}

// userFailureProfile returns the core-hours consumed by the user's failed
// jobs and the user's most common failure family.
func userFailureProfile(d *core.Dataset, cls *core.Classification, user string) (float64, string) {
	var wasted float64
	fams := map[joblog.ExitFamily]int{}
	for i := range d.Jobs {
		j := &d.Jobs[i]
		if j.User != user || j.Outcome() != joblog.OutcomeFailure {
			continue
		}
		wasted += j.CoreHours()
		fams[joblog.Family(j.ExitStatus)]++
	}
	best, bestN := "", 0
	for f, n := range fams {
		if n > bestN || (n == bestN && string(f) < best) {
			best, bestN = string(f), n
		}
	}
	return wasted, best
}
