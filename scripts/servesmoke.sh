#!/usr/bin/env bash
# servesmoke.sh — end-to-end smoke test of the mirad serving daemon:
# build it, boot it on the fast 30-day corpus, poll /healthz until it
# answers, issue a cohort query twice (cold then cached), check /v1/stats
# reflects the hit, reject a malformed predicate with 400, and shut the
# daemon down gracefully with SIGTERM expecting a clean exit.
#
# Usage:
#   scripts/servesmoke.sh [port]       # default port: 18080
#
# CI runs this after the unit tests; it exercises the real binary, real
# sockets and the real signal path, which httptest cannot.
set -euo pipefail

cd "$(dirname "$0")/.."
port="${1:-18080}"
base="http://127.0.0.1:${port}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "servesmoke: building mirad..."
go build -o "$tmp/mirad" ./cmd/mirad

echo "servesmoke: booting on :$port (30-day corpus)..."
"$tmp/mirad" -addr "127.0.0.1:${port}" -small >"$tmp/mirad.log" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

# Poll /healthz until the daemon is warm (generation + warmup take a few
# seconds; fail after 60).
for i in $(seq 1 120); do
  if curl -sf "$base/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "servesmoke: mirad died during startup:" >&2
    cat "$tmp/mirad.log" >&2
    exit 1
  fi
  sleep 0.5
  if [ "$i" -eq 120 ]; then
    echo "servesmoke: /healthz never came up" >&2
    cat "$tmp/mirad.log" >&2
    exit 1
  fi
done
echo "servesmoke: healthy"

where='exit%20!%3D%20success'

code="$(curl -s -o "$tmp/cohort1.json" -w '%{http_code}' "$base/v1/cohort?where=$where")"
[ "$code" = "200" ] || { echo "servesmoke: cohort query returned $code" >&2; exit 1; }
grep -q '"report"' "$tmp/cohort1.json" || { echo "servesmoke: cohort body carries no report" >&2; exit 1; }

# Second identical query must be served from the cache, byte-identical.
xcache="$(curl -s -o "$tmp/cohort2.json" -D - "$base/v1/cohort?where=$where" | tr -d '\r' | awk -F': ' 'tolower($1)=="x-cache"{print $2}')"
[ "$xcache" = "hit" ] || { echo "servesmoke: repeat query X-Cache=$xcache, want hit" >&2; exit 1; }
cmp -s "$tmp/cohort1.json" "$tmp/cohort2.json" || { echo "servesmoke: cached body differs from cold body" >&2; exit 1; }

# /v1/stats must reflect the hit.
curl -sf "$base/v1/stats" >"$tmp/stats.json"
grep -q '"hits":1' "$tmp/stats.json" || { echo "servesmoke: stats do not show the cache hit:" >&2; cat "$tmp/stats.json" >&2; exit 1; }

# Malformed predicates are the client's fault.
code="$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/cohort?where=user%20%3D%3D")"
[ "$code" = "400" ] || { echo "servesmoke: malformed predicate returned $code, want 400" >&2; exit 1; }

# /v1/profile and an experiment round out the surface.
code="$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/profile")"
[ "$code" = "200" ] || { echo "servesmoke: profile returned $code" >&2; exit 1; }
code="$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/experiments/E1")"
[ "$code" = "200" ] || { echo "servesmoke: E1 returned $code" >&2; exit 1; }

echo "servesmoke: queries OK; sending SIGTERM..."
kill -TERM "$pid"
wait "$pid"
rc=$?
[ "$rc" -eq 0 ] || { echo "servesmoke: mirad exited $rc after SIGTERM:" >&2; cat "$tmp/mirad.log" >&2; exit 1; }
trap 'rm -rf "$tmp"' EXIT
echo "servesmoke: graceful shutdown OK"
