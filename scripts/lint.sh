#!/usr/bin/env bash
# lint.sh — run the repository's static checks exactly as CI does:
#
#   1. gofmt -l over the tree (fails on any unformatted file, testdata
#      included — analyzer fixtures are held to the same standard);
#   2. go vet;
#   3. miralint, the invariant-enforcement suite in internal/lint
#      (determinism, hot-path allocations, mirapack layout freeze);
#   4. govulncheck, when the tool is installed (CI installs it; offline
#      checkouts skip it with a notice rather than failing).
#
# Usage:
#   scripts/lint.sh
set -uo pipefail

cd "$(dirname "$0")/.."

fail=0

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [[ -n "$unformatted" ]]; then
  echo "gofmt: the following files need formatting:" >&2
  echo "$unformatted" >&2
  fail=1
fi

echo "== go vet"
go vet ./... || fail=1

echo "== miralint"
go run ./cmd/miralint ./... || fail=1

echo "== govulncheck"
if command -v govulncheck >/dev/null 2>&1; then
  govulncheck ./... || fail=1
else
  echo "govulncheck not installed; skipping (CI runs it)"
fi

exit "$fail"
