// Command benchjson wraps raw `go test -bench` output (stdin) in a JSON
// envelope with provenance, written by scripts/bench.sh as BENCH_<sha>.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
)

type envelope struct {
	SHA        string   `json:"sha"`
	GoVersion  string   `json:"go"`
	Benchmarks []string `json:"benchmarks"`
	Raw        string   `json:"raw"`
}

func main() {
	out := flag.String("out", "", "output path (empty = stdout)")
	sha := flag.String("sha", "", "commit SHA the results belong to")
	flag.Parse()

	raw, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc := envelope{SHA: *sha, GoVersion: runtime.Version(), Raw: string(raw)}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "Benchmark") {
			doc.Benchmarks = append(doc.Benchmarks, line)
		}
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
