// Command benchjson wraps raw `go test -bench` output (stdin) in a JSON
// envelope with provenance, written by scripts/bench.sh as BENCH_<sha>.json.
//
// With -validate, it instead checks committed envelopes: each argument must
// be a well-formed envelope whose sha matches its BENCH_<sha>.json filename
// and whose benchmark list is non-empty. CI runs this over the repo root so
// the benchmark trajectory (one committed file per perf PR) stays parseable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

type envelope struct {
	SHA        string   `json:"sha"`
	GoVersion  string   `json:"go"`
	Benchmarks []string `json:"benchmarks"`
	Raw        string   `json:"raw"`
}

func main() {
	out := flag.String("out", "", "output path (empty = stdout)")
	sha := flag.String("sha", "", "commit SHA the results belong to")
	validate := flag.Bool("validate", false, "validate the BENCH_<sha>.json files given as arguments instead of wrapping stdin")
	flag.Parse()

	if *validate {
		if err := validateFiles(flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	raw, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc := envelope{SHA: *sha, GoVersion: runtime.Version(), Raw: string(raw)}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "Benchmark") {
			doc.Benchmarks = append(doc.Benchmarks, line)
		}
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// validateFiles checks each envelope decodes, carries results, and agrees
// with its filename's sha.
func validateFiles(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("-validate needs at least one BENCH_<sha>.json argument")
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var doc envelope
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if doc.SHA == "" || doc.GoVersion == "" {
			return fmt.Errorf("%s: missing sha or go version", path)
		}
		if len(doc.Benchmarks) == 0 {
			return fmt.Errorf("%s: no benchmark result lines", path)
		}
		name := filepath.Base(path)
		if want := "BENCH_" + doc.SHA + ".json"; name != want {
			return fmt.Errorf("%s: filename does not match envelope sha (want %s)", path, want)
		}
		for _, line := range doc.Benchmarks {
			if !strings.Contains(doc.Raw, line) {
				return fmt.Errorf("%s: benchmark line %q missing from raw output", path, line)
			}
		}
		fmt.Printf("%s: ok (%d benchmarks, %s)\n", path, len(doc.Benchmarks), doc.GoVersion)
	}
	return nil
}
