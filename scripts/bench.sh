#!/usr/bin/env bash
# bench.sh — run the hot-path benchmarks with -benchmem and archive the
# output as BENCH_<sha>.json (a JSON envelope wrapping the raw
# `go test -bench` text, so results stay machine-readable and diffable
# across commits).
#
# Usage:
#   scripts/bench.sh [outdir]          # default outdir: the repo root
#   BENCH_FULL=1 scripts/bench.sh      # also run the repo-root experiment
#                                      # benches (150-day corpus, slow)
#
# The default outdir is the repository root so that results are committed
# alongside the change they measure: every perf PR runs this script and
# checks in its BENCH_<sha>.json (sha = HEAD at measurement time), giving
# the repo a benchmark trajectory reviewers can diff. CI validates the
# committed envelopes with `scripts/benchjson -validate`.
#
# The default set is the cheap paired benchmarks: the codec allocation
# comparisons in internal/raslog (alloc_reduction metric), the
# filter-sweep speedup comparison in internal/core (speedup metric), the
# LoadCSV/LoadPack corpus-load comparison in internal/pack (speedup
# metric), the FitLegacy/FitSample model-selection comparison in
# internal/dist (speedup metric), the headline fused-vs-legacy suite
# comparison Benchmark_RunAll_{Legacy,Fused} at the repo root (speedup
# metric, measured against a median legacy reference pass — DESIGN.md
# §13), the cohort-query pushdown comparison
# Benchmark_CohortSweep_{Materialize,Where} (speedup metric, measured
# against a median materialize reference pass — DESIGN.md §14), and the
# serving-layer cache comparison Benchmark_CohortServe_{Cold,Warm}
# (speedup metric, measured against a median cold reference pass —
# DESIGN.md §15; the warm floor is 20×).
set -euo pipefail

cd "$(dirname "$0")/.."
outdir="${1:-.}"
mkdir -p "$outdir"

sha="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
out="$outdir/BENCH_${sha}.json"

pkgs=(./internal/raslog/ ./internal/core/ ./internal/pack/ ./internal/dist/)
if [[ "${BENCH_FULL:-0}" == "1" ]]; then
  pkgs+=(.)
fi

raw="$(go test -bench=. -benchmem -count=1 -run '^$' "${pkgs[@]}")"
if [[ "${BENCH_FULL:-0}" != "1" ]]; then
  # The full run covers the repo root already; otherwise run just the
  # paired suite and cohort comparisons with a bounded iteration count.
  raw+=$'\n'"$(go test -bench 'Benchmark_(RunAll_(Legacy|Fused)|CohortSweep_(Materialize|Where)|CohortServe_(Cold|Warm))$' -benchmem -benchtime=10x -count=1 -run '^$' .)"
fi
echo "$raw"
go run ./scripts/benchjson -out "$out" -sha "$sha" <<<"$raw"
echo "wrote $out"
