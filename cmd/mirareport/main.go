// Command mirareport runs the paper's analyses — experiments E1–E22 and the
// 22-takeaway report — over a corpus, either loaded from a directory
// written by miragen or generated in memory.
//
// Usage:
//
//	mirareport [-in corpus/] [-format auto|csv|pack] [-days 2001] [-seed 1]
//	           [-exp E6] [-takeaways] [-where 'user == u042 and sev == FATAL']
//	           [-csv out/] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Without -in, a corpus is generated with the default (or overridden)
// configuration. With -in, the corpus.mirapack binary snapshot is preferred
// when present (one read, no parse — see DESIGN.md §10); -format csv forces
// the four CSV files, -format pack requires the snapshot. Without -exp,
// every experiment runs. -csv additionally dumps every figure as a CSV
// series for plotting.
//
// -where restricts the report to a cohort: the predicate compiles to
// bitmap selections that push down into the fused scan engine (DESIGN.md
// §14), so the cohort profile prints without materializing a filtered
// corpus. Job columns: user, project, exit, nodes, dur, submit. Event
// columns: sev, cat, comp, midplane, rack, time.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/pack"
	"repro/internal/sel"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mirareport:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "corpus directory written by miragen (empty = generate)")
	format := flag.String("format", "auto", "corpus format for -in: auto (prefer pack), csv, pack")
	days := flag.Int("days", 0, "override days when generating")
	seed := flag.Int64("seed", 0, "override seed when generating")
	small := flag.Bool("small", false, "generate the fast 30-day corpus")
	expID := flag.String("exp", "", "run a single experiment (E1..E22)")
	takeaways := flag.Bool("takeaways", false, "print only the 22-takeaway report")
	where := flag.String("where", "", "print the cohort profile this predicate selects and exit (e.g. 'exit != success and nodes >= 1024')")
	list := flag.Bool("list", false, "list the experiments and exit")
	csvDir := flag.String("csv", "", "also dump figure/table CSVs into this directory")
	parallelism := flag.Int("parallelism", 0, "worker bound for corpus generation and the experiment suite (0 = all cores, 1 = serial; results are identical)")
	legacy := flag.Bool("legacy", false, "disable the fused scan engine and recompute every analysis per experiment (output is byte-identical; for benchmarking and bisection)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mirareport: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mirareport: memprofile:", err)
			}
		}()
	}

	if *list {
		for _, exp := range experiments.All() {
			fmt.Printf("%-4s %s\n", exp.ID, exp.Description)
		}
		return nil
	}

	env, err := buildEnv(*in, *format, *days, *seed, *small, *parallelism)
	if err != nil {
		return err
	}
	env.Legacy = *legacy

	if *where != "" {
		return printCohort(env, *where)
	}
	if *takeaways {
		return printTakeaways(env.D)
	}

	var results []*experiments.Result
	if *expID != "" {
		exp, ok := experiments.ByID(*expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (run with -list to see E1..E22)", *expID)
		}
		res, err := exp.Run(env)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		results = []*experiments.Result{res}
	} else {
		// Fan the suite out across workers; results come back in index
		// order, so the report reads identically at any parallelism.
		if results, err = experiments.RunAll(env, *parallelism); err != nil {
			return err
		}
	}

	for _, res := range results {
		fmt.Printf("=== %s: %s ===\n", res.ID, res.Description)
		for _, t := range res.Tables {
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		for _, f := range res.Figures {
			if err := f.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if *csvDir != "" {
			if err := dumpCSVs(*csvDir, res); err != nil {
				return err
			}
		}
	}
	if *expID == "" {
		fmt.Println("=== 22 takeaways ===")
		return printTakeaways(env.D)
	}
	return nil
}

// buildEnv creates the evaluation environment from a corpus directory
// (snapshot or CSV) or by generating a fresh corpus.
func buildEnv(in, format string, days int, seed int64, small bool, parallelism int) (*experiments.Env, error) {
	if in == "" {
		cfg := sim.DefaultConfig()
		if small {
			cfg = sim.SmallConfig()
		}
		if days > 0 {
			cfg.Days = days
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		fmt.Fprintf(os.Stderr, "generating %d-day corpus (seed %d)...\n", cfg.Days, cfg.Seed)
		return experiments.NewEnvParallel(cfg, parallelism)
	}
	ft, err := pack.ParseFormat(format)
	if err != nil {
		return nil, err
	}
	d, err := pack.LoadDir(in, ft)
	if err != nil {
		return nil, err
	}
	env := experiments.NewEnvFromDataset(d)
	env.Parallelism = parallelism
	return env, nil
}

// printCohort renders the fused profile of the cohort a -where predicate
// selects, through the rendering path shared with the mirad /v1/cohort
// endpoint (experiments.RenderCohort). Both surfaces title the report
// with the predicate's *canonical* form — the cache key every layer
// shares — so the output is bit-identical for any spelling of one
// selection.
func printCohort(env *experiments.Env, where string) error {
	expr, err := sel.Parse(where)
	if err != nil {
		return err
	}
	p, err := env.CohortProfileExpr(expr)
	if err != nil {
		return err
	}
	return experiments.RenderCohort(os.Stdout, p, expr.String())
}

func printTakeaways(d *core.Dataset) error {
	ts, err := d.Takeaways()
	if err != nil {
		return err
	}
	for _, t := range ts {
		fmt.Printf("%2d. [%s] %s\n", t.ID, t.Tag, t.Text)
	}
	return nil
}

func dumpCSVs(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", strings.ToLower(res.ID), i+1))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	for i, fig := range res.Figures {
		path := filepath.Join(dir, fmt.Sprintf("%s_fig%d.csv", strings.ToLower(res.ID), i+1))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fig.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
