// Command mirapack converts a CSV corpus directory into a corpus.mirapack
// binary snapshot, and inspects or verifies existing snapshots.
//
// Usage:
//
//	mirapack -in corpus/                  convert CSVs -> corpus/corpus.mirapack
//	mirapack -in corpus/ -out snap.mirapack
//	mirapack -info -in corpus/            print header, sections, checksums
//	                                      and selection-index statistics
//	mirapack -verify -in snap.mirapack    fully decode and report row counts
//
// -in accepts either a corpus directory (the snapshot is resolved to
// corpus.mirapack inside it) or, for -info/-verify, a snapshot file
// directly. Convert loads the CSVs through the same path mirareport uses,
// so a snapshot always carries the prebuilt indexes of a fully validated
// dataset.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/pack"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mirapack:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "corpus directory, or snapshot file for -info/-verify (required)")
	out := flag.String("out", "", "snapshot output path (default: corpus.mirapack inside -in)")
	info := flag.Bool("info", false, "print the snapshot's header summary instead of converting")
	verify := flag.Bool("verify", false, "fully decode the snapshot instead of converting")
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	switch {
	case *info:
		return printInfo(snapshotArg(*in))
	case *verify:
		return verifySnapshot(snapshotArg(*in))
	default:
		return convert(*in, *out)
	}
}

// snapshotArg resolves -in to a snapshot file: a directory means the
// conventional corpus.mirapack inside it.
func snapshotArg(in string) string {
	if st, err := os.Stat(in); err == nil && st.IsDir() {
		return pack.SnapshotPath(in)
	}
	return in
}

func convert(dir, out string) error {
	if out == "" {
		out = pack.SnapshotPath(dir)
	}
	d, err := pack.LoadCSVDir(dir)
	if err != nil {
		return err
	}
	if err := pack.WriteFile(out, d); err != nil {
		return err
	}
	st, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes): %d jobs, %d tasks, %d RAS events, %d I/O records\n",
		out, st.Size(), len(d.Jobs), len(d.Tasks), len(d.Events), len(d.IO))
	return nil
}

func printInfo(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	inf, err := pack.Inspect(data)
	if err != nil {
		return err
	}
	fmt.Printf("%s: mirapack v%d, %d bytes\n", path, inf.Version, len(data))
	fmt.Printf("%-10s %12s %10s\n", "section", "bytes", "crc32")
	for _, s := range inf.Sections {
		fmt.Printf("%-10s %12d   %08x\n", s.Name, s.Bytes, s.CRC)
	}

	// Selection-index report: decode the snapshot and build the per-column
	// bitmap indexes the -where predicates compile against, so operators can
	// see each dimension's cardinality and compressed footprint up front.
	d, err := pack.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("\nselection indexes (see mirareport -where)\n")
	fmt.Printf("%-6s %-10s %8s %12s %12s\n", "table", "column", "keys", "rows", "bytes")
	for _, s := range d.IndexStats() {
		fmt.Printf("%-6s %-10s %8d %12d %12d\n", s.Domain, s.Column, s.Keys, s.Rows, s.Bytes)
	}
	return nil
}

func verifySnapshot(path string) error {
	d, err := pack.ReadFile(path)
	if err != nil {
		return err
	}
	start, end := d.Span()
	fmt.Printf("%s: ok — %d jobs, %d tasks, %d RAS events, %d I/O records, %s to %s\n",
		path, len(d.Jobs), len(d.Tasks), len(d.Events), len(d.IO),
		start.Format("2006-01-02"), end.Format("2006-01-02"))
	return nil
}
