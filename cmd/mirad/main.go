// Command mirad is the long-running serving daemon over one corpus
// snapshot: it loads (or generates) a corpus once, pre-warms the scan
// views and per-dimension bitmap selection indexes, and serves
// concurrent JSON queries until shut down (DESIGN.md §15).
//
// Usage:
//
//	mirad [-addr :8080] [-in corpus/] [-format auto|csv|pack]
//	      [-small] [-days N] [-seed N]
//	      [-cache 1024] [-parallelism N] [-max-inflight 256] [-pprof]
//
// Endpoints:
//
//	GET /healthz              liveness probe
//	GET /v1/profile           whole-corpus fused profile
//	GET /v1/cohort?where=...  cohort profile via predicate pushdown;
//	                          the report field is bit-identical to
//	                          `mirareport -where` for the same predicate
//	GET /v1/experiments/{id}  one experiment's metrics/tables/figures
//	GET /v1/stats             cache, endpoint, index and runtime metrics
//
// Cohort responses cache in a sharded LRU keyed by the predicate's
// canonical form; concurrent identical queries collapse onto one
// computation. SIGINT/SIGTERM drain connections gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/pack"
	"repro/internal/serve"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mirad:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	in := flag.String("in", "", "corpus directory written by miragen (empty = generate)")
	format := flag.String("format", "auto", "corpus format for -in: auto (prefer pack), csv, pack")
	small := flag.Bool("small", false, "generate the fast 30-day corpus")
	days := flag.Int("days", 0, "override days when generating")
	seed := flag.Int64("seed", 0, "override seed when generating")
	cacheEntries := flag.Int("cache", 1024, "cohort-response LRU capacity (entries)")
	parallelism := flag.Int("parallelism", 0, "worker bound per fused scan (0 = all cores; results are identical)")
	maxInflight := flag.Int("max-inflight", 256, "concurrently executing /v1 requests before shedding with 429")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain timeout")
	flag.Parse()

	env, err := buildEnv(*in, *format, *days, *seed, *small, *parallelism)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mirad: corpus ready: %d jobs, %d events, %.1f days\n",
		len(env.D.Jobs), len(env.D.Events), env.D.Days())

	srv := serve.New(env, serve.Options{
		CacheEntries: *cacheEntries,
		MaxInflight:  *maxInflight,
		Parallelism:  *parallelism,
		Pprof:        *pprofFlag,
	})
	ws, err := srv.Warm()
	if err != nil {
		return fmt.Errorf("warm: %w", err)
	}
	fmt.Fprintf(os.Stderr, "mirad: warm in %v (%d index dims, %d index bytes)\n",
		ws.Duration.Round(time.Millisecond), ws.IndexDims, ws.IndexBytes)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight connections.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "mirad: listening on %s\n", *addr)
		errc <- hs.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "mirad: shutting down, draining connections...")
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "mirad: bye")
	return nil
}

// buildEnv mirrors mirareport's corpus bootstrap: load a snapshot or CSV
// directory, or generate a corpus in memory.
func buildEnv(in, format string, days int, seed int64, small bool, parallelism int) (*experiments.Env, error) {
	if in == "" {
		cfg := sim.DefaultConfig()
		if small {
			cfg = sim.SmallConfig()
		}
		if days > 0 {
			cfg.Days = days
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		fmt.Fprintf(os.Stderr, "mirad: generating %d-day corpus (seed %d)...\n", cfg.Days, cfg.Seed)
		return experiments.NewEnvParallel(cfg, parallelism)
	}
	ft, err := pack.ParseFormat(format)
	if err != nil {
		return nil, err
	}
	d, err := pack.LoadDir(in, ft)
	if err != nil {
		return nil, err
	}
	env := experiments.NewEnvFromDataset(d)
	env.Parallelism = parallelism
	return env, nil
}
