// Command mirafilter applies similarity-based event filtering to a RAS log
// and emits one row per coalesced incident — the streaming version of the
// paper's filtering step, usable on logs too large to slurp.
//
// Usage:
//
//	mirafilter -in ras.csv|corpus.mirapack [-format auto|csv|pack]
//	           [-window 20m] [-level midplane] [-by-message] [-severity FATAL]
//	           [-where 'cat == Memory and rack == R01']
//
// The input may be a RAS CSV log (streamed row by row) or a corpus.mirapack
// binary snapshot (events section decoded in one step, no parse); -format
// auto sniffs the file's magic bytes.
//
// -where further restricts the events entering the filter with an
// event-column predicate (sev, cat, comp, midplane, rack, time — the same
// grammar as mirareport -where), evaluated through the bitmap selection
// indexes of DESIGN.md §14.
//
// Output columns: first_unix, last_unix, events, location, msg_id,
// category, job_ids (semicolon-separated).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/pack"
	"repro/internal/raslog"
	"repro/internal/sel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mirafilter:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "RAS CSV log or corpus.mirapack snapshot (required)")
	format := flag.String("format", "auto", "input format: auto (sniff), csv, pack")
	window := flag.Duration("window", 20*time.Minute, "temporal coalescing window")
	level := flag.String("level", "midplane", "spatial similarity level: system|rack|midplane|node-board|node")
	byMsg := flag.Bool("by-message", true, "require identical message IDs (false: same category)")
	sevName := flag.String("severity", "FATAL", "severity to filter: FATAL|WARN|INFO")
	where := flag.String("where", "", "event-column predicate restricting the events entering the filter")
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	lv, err := parseLevel(*level)
	if err != nil {
		return err
	}
	sev, err := raslog.ParseSeverity(*sevName)
	if err != nil {
		return err
	}
	rule := core.FilterRule{Window: *window, Spatial: lv, SameMessage: *byMsg}
	if err := rule.Validate(); err != nil {
		return err
	}

	events, total, err := readSeverity(*in, *format, sev)
	if err != nil {
		return err
	}
	if *where != "" {
		if events, err = applyWhere(events, *where); err != nil {
			return err
		}
	}
	incidents, err := core.FilterBySeverity(events, sev, rule)
	if err != nil {
		return err
	}

	w := csv.NewWriter(os.Stdout)
	if err := w.Write([]string{"first_unix", "last_unix", "events", "location", "msg_id", "category", "job_ids"}); err != nil {
		return err
	}
	for i := range incidents {
		inc := &incidents[i]
		ids := make([]string, len(inc.JobIDs))
		for k, id := range inc.JobIDs {
			ids[k] = strconv.FormatInt(id, 10)
		}
		if err := w.Write([]string{
			strconv.FormatInt(inc.First.Unix(), 10),
			strconv.FormatInt(inc.Last.Unix(), 10),
			strconv.Itoa(inc.Events),
			inc.Loc.String(),
			inc.MsgID,
			string(inc.Cat),
			strings.Join(ids, ";"),
		}); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "read %d events, %d %s; emitted %d incidents (%.1fx reduction)\n",
		total, len(events), sev, len(incidents), reduction(len(events), len(incidents)))
	return nil
}

// applyWhere keeps the events a -where predicate selects. The column view
// and its indexes are transient (one CLI run, one query), built through
// the same compiler mirareport's cohort path uses.
func applyWhere(events []raslog.Event, where string) ([]raslog.Event, error) {
	expr, err := sel.Parse(where)
	if err != nil {
		return nil, err
	}
	b, err := core.SelectEventsView(core.BuildEventView(events), expr)
	if err != nil {
		return nil, err
	}
	kept := make([]raslog.Event, 0, b.Cardinality())
	b.Iterate(func(row uint32) bool {
		kept = append(kept, events[row])
		return true
	})
	return kept, nil
}

// readSeverity returns the matching-severity events from a RAS CSV log or
// a binary snapshot, plus the total event count seen.
func readSeverity(in, format string, sev raslog.Severity) ([]raslog.Event, int, error) {
	ft, err := pack.ParseFormat(format)
	if err != nil {
		return nil, 0, err
	}
	if ft == pack.FormatPack || (ft == pack.FormatAuto && pack.IsSnapshotFile(in)) {
		all, err := pack.ReadEventsFile(in)
		if err != nil {
			return nil, 0, err
		}
		var events []raslog.Event
		for _, e := range all {
			if e.Sev == sev {
				events = append(events, e)
			}
		}
		return events, len(all), nil
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc, err := raslog.NewScanner(f)
	if err != nil {
		return nil, 0, err
	}
	// Stream the log: the filter needs only the matching-severity events,
	// which are a small fraction of the stream, so collect just those.
	var events []raslog.Event
	total := 0
	for sc.Scan() {
		total++
		if e := sc.Event(); e.Sev == sev {
			events = append(events, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return events, total, nil
}

func reduction(raw, filtered int) float64 {
	if filtered == 0 {
		return 0
	}
	return float64(raw) / float64(filtered)
}

func parseLevel(s string) (machine.Level, error) {
	switch s {
	case "system":
		return machine.LevelSystem, nil
	case "rack":
		return machine.LevelRack, nil
	case "midplane":
		return machine.LevelMidplane, nil
	case "node-board":
		return machine.LevelNodeBoard, nil
	case "node":
		return machine.LevelNode, nil
	default:
		return 0, fmt.Errorf("unknown level %q", s)
	}
}
