// Command calibrate regenerates the default corpus and prints the
// calibration anchors next to the paper's values — the check that the
// simulator still reproduces the abstract's headline numbers after any
// model change.
//
// Usage:
//
//	calibrate [-days 2001] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/joblog"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func run() error {
	days := flag.Int("days", 0, "override observation span (0 = 2001)")
	seed := flag.Int64("seed", 0, "override RNG seed (0 = default)")
	flag.Parse()

	cfg := sim.DefaultConfig()
	if *days > 0 {
		cfg.Days = *days
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	scale := float64(cfg.Days) / 2001.0

	start := time.Now()
	c, err := sim.Generate(cfg)
	if err != nil {
		return err
	}
	var coreHours float64
	fams := map[joblog.ExitFamily]int{}
	for i := range c.Jobs {
		coreHours += c.Jobs[i].CoreHours()
		fams[joblog.Family(c.Jobs[i].ExitStatus)]++
	}
	fails := len(c.Jobs) - fams[joblog.FamilySuccess]
	userShare := float64(fails-fams[joblog.FamilySystem]) / float64(fails)
	mtti := float64(cfg.Days) / float64(c.Truth.KillingIncidents)

	fmt.Printf("generation time: %v\n", time.Since(start))
	fmt.Printf("%-22s %14s %14s\n", "anchor", "measured", "paper (scaled)")
	row := func(name string, measured, target float64) {
		fmt.Printf("%-22s %14.3f %14.3f\n", name, measured, target)
	}
	row("days", float64(cfg.Days), 2001*scale)
	row("core-hours (B)", coreHours/1e9, 32.44*scale)
	row("job failures", float64(fails), 99245*scale)
	row("user-caused share", userShare, 0.994)
	row("MTTI (days)", mtti, 3.5)
	fmt.Printf("\njobs=%d tasks=%d events=%d io=%d\n", len(c.Jobs), len(c.Tasks), len(c.Events), len(c.IO))
	fmt.Printf("truth: %+v\n", c.Truth)
	fmt.Printf("failure families: %v\n", fams)
	return nil
}
