// Command calibrate prints the calibration anchors next to the paper's
// values — the check that the simulator still reproduces the abstract's
// headline numbers after any model change. It either regenerates the
// default corpus or, with -in, loads one written by miragen (preferring
// the corpus.mirapack snapshot).
//
// Usage:
//
//	calibrate [-days 2001] [-seed 1]
//	calibrate -in corpus/ [-format auto|csv|pack]
//
// When generating, MTTI comes from the simulator's ground truth; when
// loading, it is measured by the paper's filtering analysis, so the two
// modes double as a cross-check of each other.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/joblog"
	"repro/internal/pack"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "corpus directory written by miragen (empty = generate)")
	format := flag.String("format", "auto", "corpus format for -in: auto (prefer pack), csv, pack")
	days := flag.Int("days", 0, "override observation span when generating (0 = 2001)")
	seed := flag.Int64("seed", 0, "override RNG seed when generating (0 = default)")
	flag.Parse()

	if *in != "" {
		return fromCorpus(*in, *format)
	}
	return fromGenerator(*days, *seed)
}

func fromGenerator(days int, seed int64) error {
	cfg := sim.DefaultConfig()
	if days > 0 {
		cfg.Days = days
	}
	if seed != 0 {
		cfg.Seed = seed
	}

	start := time.Now()
	c, err := sim.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("generation time: %v\n", time.Since(start))
	mtti := float64(cfg.Days) / float64(c.Truth.KillingIncidents)
	printAnchors(float64(cfg.Days), c.Jobs, mtti)
	fmt.Printf("\njobs=%d tasks=%d events=%d io=%d\n", len(c.Jobs), len(c.Tasks), len(c.Events), len(c.IO))
	fmt.Printf("truth: %+v\n", c.Truth)
	return nil
}

func fromCorpus(in, format string) error {
	ft, err := pack.ParseFormat(format)
	if err != nil {
		return err
	}
	start := time.Now()
	d, err := pack.LoadDir(in, ft)
	if err != nil {
		return err
	}
	fmt.Printf("load time: %v\n", time.Since(start))
	// No ground truth in a log corpus: measure MTTI the way the paper does,
	// by coalescing job-killing FATALs with the default similarity rule.
	mtti, err := d.MTTI(core.DefaultFilterRule())
	if err != nil {
		return err
	}
	printAnchors(d.Days(), d.Jobs, mtti.MTTIDays)
	fmt.Printf("\njobs=%d tasks=%d events=%d io=%d\n", len(d.Jobs), len(d.Tasks), len(d.Events), len(d.IO))
	return nil
}

// printAnchors renders the measured anchors next to the paper's values,
// scaled to the corpus span.
func printAnchors(days float64, jobs []joblog.Job, mtti float64) {
	scale := days / 2001.0
	var coreHours float64
	fams := map[joblog.ExitFamily]int{}
	for i := range jobs {
		coreHours += jobs[i].CoreHours()
		fams[joblog.Family(jobs[i].ExitStatus)]++
	}
	fails := len(jobs) - fams[joblog.FamilySuccess]
	userShare := float64(fails-fams[joblog.FamilySystem]) / float64(fails)

	fmt.Printf("%-22s %14s %14s\n", "anchor", "measured", "paper (scaled)")
	row := func(name string, measured, target float64) {
		fmt.Printf("%-22s %14.3f %14.3f\n", name, measured, target)
	}
	row("days", days, 2001*scale)
	row("core-hours (B)", coreHours/1e9, 32.44*scale)
	row("job failures", float64(fails), 99245*scale)
	row("user-caused share", userShare, 0.994)
	row("MTTI (days)", mtti, 3.5)
	fmt.Printf("\nfailure families: %v\n", fams)
}
