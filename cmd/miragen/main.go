// Command miragen generates a synthetic Mira corpus — the job-scheduling,
// task, RAS and I/O logs described in DESIGN.md — and writes the four CSV
// files plus a corpus.mirapack binary snapshot into a directory. The
// snapshot is what mirareport and friends load by default: one read, no
// parse, prebuilt indexes (see DESIGN.md §10).
//
// Usage:
//
//	miragen -out corpus/ [-days 2001] [-seed 1] [-small] [-pack=false]
//
// The full 2001-day corpus (~350k jobs, ~1.25M RAS events) takes roughly
// half a minute and ~1 GB of RAM; -small generates a 30-day corpus for
// experimentation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/joblog"
	"repro/internal/pack"
	"repro/internal/raslog"
	"repro/internal/sim"
	"repro/internal/tasklog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "miragen:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "corpus", "output directory for the CSV logs")
	days := flag.Int("days", 0, "override observation span in days (0 = config default)")
	seed := flag.Int64("seed", 0, "override RNG seed (0 = config default)")
	small := flag.Bool("small", false, "use the fast 30-day configuration")
	writePack := flag.Bool("pack", true, "also write the corpus.mirapack binary snapshot")
	flag.Parse()

	cfg := sim.DefaultConfig()
	if *small {
		cfg = sim.SmallConfig()
	}
	if *days > 0 {
		cfg.Days = *days
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	fmt.Fprintf(os.Stderr, "generating %d-day corpus (seed %d)...\n", cfg.Days, cfg.Seed)
	c, err := sim.Generate(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(*out, "jobs.csv"), func(f *os.File) error {
		return joblog.WriteCSV(f, c.Jobs)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(*out, "tasks.csv"), func(f *os.File) error {
		return tasklog.WriteCSV(f, c.Tasks)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(*out, "ras.csv"), func(f *os.File) error {
		return raslog.WriteCSV(f, c.Events)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(*out, "io.csv"), func(f *os.File) error {
		return iolog.WriteCSV(f, c.IO)
	}); err != nil {
		return err
	}
	if *writePack {
		d, err := core.NewDataset(c.Jobs, c.Tasks, c.Events, c.IO)
		if err != nil {
			return err
		}
		if err := pack.WriteFile(pack.SnapshotPath(*out), d); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s: %d jobs, %d tasks, %d RAS events, %d I/O records\n",
		*out, len(c.Jobs), len(c.Tasks), len(c.Events), len(c.IO))
	fmt.Printf("ground truth: %d incidents (%d job-killing), %d system-killed jobs, %d user failures\n",
		c.Truth.Incidents, c.Truth.KillingIncidents, c.Truth.SystemKilledJobs, c.Truth.UserFailedJobs)
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}
