// Command miralint runs the repository's invariant-enforcement
// analyzers (internal/lint) over a set of packages, go vet-style.
//
// Usage:
//
//	go run ./cmd/miralint [flags] [packages]
//
// With no package patterns it analyzes ./.... It prints one
// file:line:col diagnostic per violation and exits non-zero if any
// survive suppression; -json emits the diagnostics as a JSON array for
// tooling. See DESIGN.md §12 for the analyzer catalogue and the
// //lint:ignore suppression convention.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of vet-style text")
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: miralint [-json] [-list] [-analyzers a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var selected []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "miralint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "miralint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "miralint: %v\n", err)
		os.Exit(2)
	}

	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		ds, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "miralint: %v\n", err)
			os.Exit(2)
		}
		diags = append(diags, ds...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "miralint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "miralint: %d violation(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
